// The cumulative transformation levels of the paper's evaluation
// (Section 3.2):
//
//   Conv  conventional scalar optimizations only
//   Lev1  + loop unrolling
//   Lev2  + register renaming
//   Lev3  + operation combining, strength reduction, tree height reduction
//   Lev4  + accumulator / induction / search variable expansion
//
// Pipeline order (each level enables a subset):
//   conventional -> unroll -> expansions (pre-renaming, so the recurrence
//   registers still carry one name) -> renaming -> combining/strength/height
//   -> cleanup -> superblock scheduling.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "sched/modulo/modulo.hpp"
#include "support/compile_ctx.hpp"
#include "trans/nest/nest.hpp"
#include "trans/unroll.hpp"

namespace ilp {

enum class OptLevel { Conv = 0, Lev1 = 1, Lev2 = 2, Lev3 = 3, Lev4 = 4 };

inline const char* level_name(OptLevel l) {
  switch (l) {
    case OptLevel::Conv: return "Conv";
    case OptLevel::Lev1: return "Lev1";
    case OptLevel::Lev2: return "Lev2";
    case OptLevel::Lev3: return "Lev3";
    case OptLevel::Lev4: return "Lev4";
  }
  return "?";
}

struct CompileOptions {
  UnrollOptions unroll;
  // Affine nest restructuring (trans/nest/): runs before the conventional
  // optimizations — the passes pattern-match the frontend's canonical loop
  // shape, which LICM/ivopt destroy.  All off by default.
  NestOptions nest;
  bool schedule = true;  // superblock-schedule at the end
  // Scheduling backend.  Modulo software-pipelines eligible counted loops
  // (sched/modulo/) before the final list-scheduling pass; List is the
  // default and the only backend exercised on the allocation-free warm path.
  SchedulerKind scheduler = SchedulerKind::List;
  ModuloOptions modulo;
};

// Applies the full pipeline for `level`, scheduling for `machine`.
void compile_at_level(Function& fn, OptLevel level, const MachineModel& machine,
                      const CompileOptions& opts = {});

// Individual-transformation toggles, used by the ablation bench.
struct TransformSet {
  bool unroll = false;
  bool rename = false;
  bool combine = false;
  bool strength = false;
  bool height = false;
  bool acc_expand = false;
  bool ind_expand = false;
  bool search_expand = false;

  static TransformSet for_level(OptLevel level);
  bool operator==(const TransformSet&) const = default;
};

// Per-compile transformation statistics — the paper's Table-style data
// (which of the eight ILP transformations fired and how much the code grew)
// as a first-class runtime signal.  Filled by compile_with_transforms when a
// stats pointer is passed; every compile also accumulates the same counts
// into the global MetricsRegistry under "trans.*".
struct TransformStats {
  // Nest restructuring pre-passes (trans/nest/, CompileOptions::nest knobs).
  // These precede the paper's eight transformations and are deliberately not
  // part of total_applied(), which counts exactly the paper's set.
  int loops_interchanged = 0;
  int loops_fused = 0;
  int loops_fissioned = 0;
  int loops_tiled = 0;
  int loops_unrolled = 0;      // paper: loop unrolling
  int regs_renamed = 0;        // register renaming (registers split)
  int accs_expanded = 0;       // accumulator variable expansion
  int inds_expanded = 0;       // induction variable expansion
  int searches_expanded = 0;   // search variable expansion
  int ops_combined = 0;        // operation combining (pairs)
  int strength_reduced = 0;    // strength reduction (instructions)
  int trees_rebalanced = 0;    // tree height reduction (expression trees)
  std::size_t ir_insts_before = 0;  // after conventional opts, before ILP passes
  std::size_t ir_insts_after = 0;   // after cleanup + scheduling
  std::uint64_t schedule_ns = 0;    // wall time of the scheduling pass
  // Modulo backend results (all zero under SchedulerKind::List).
  ModuloStats modulo;

  [[nodiscard]] int total_applied() const {
    return loops_unrolled + regs_renamed + accs_expanded + inds_expanded +
           searches_expanded + ops_combined + strength_reduced + trees_rebalanced;
  }
};

// Explicit-context form: all pass scratch and analysis storage comes from
// `ctx`, which is reset (arena rewound, not freed) at the start of the
// compile.  Two sequential compiles on one warm context produce bit-identical
// output to two fresh contexts — the context only changes where memory lives.
void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts,
                             TransformStats* stats, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts = {},
                             TransformStats* stats = nullptr);

}  // namespace ilp
