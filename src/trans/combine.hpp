// Operation combining (paper Section 2, after Nakatani & Ebcioglu).
//
// Eliminates the flow dependence between two instructions that each carry a
// compile-time constant operand:
//
//   I1: r1 = r2 op1 C1
//   I2: r3 = r1 op2 C2        =>   I2': r3 = r2 op2 (C1 op3 C2)
//
// Allowed combinations (paper's table):
//   (add.i, sub.i) -> add.i, sub.i, int compare-branch, load, store
//   (mul.i)        -> mul.i
//   (add.f, sub.f) -> add.f, sub.f, fp compare-branch
//   (mul.f, div.f) -> mul.f, div.f
//
// When I1 writes its own source (r1 = r1 + C), the combined I2' must read the
// pre-increment value, so the two instructions exchange positions (paper
// Figure 6); the exchange is performed only when no intervening instruction
// conflicts.  Integer constant evaluation that overflows aborts the rewrite
// (paper footnote 1).
#pragma once

#include "ir/function.hpp"

namespace ilp {

// Returns the number of pairs combined.
int operation_combining(Function& fn);

}  // namespace ilp
