// Shared machinery for the three expansion transformations (accumulator,
// induction, search variable expansion — paper Section 2).
//
// Each expansion rewrites a loop-carried register recurrence into k
// independent temporaries and recovers the original register's value at
// every loop exit.  Exits are:
//   * the fall-through exit: fixup code goes into a new block spliced
//     between the loop body and its layout successor (other predecessors of
//     the old exit block, e.g. the unroller's guard, correctly bypass it);
//   * side exits: each branch out of the body is retargeted at a fresh stub
//     block holding the fixup code and a jump to the original target.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/loops.hpp"
#include "ir/function.hpp"

namespace ilp {

// Inserts `code` on the fall-through exit edge of `loop`.  Returns the new
// block's id.
BlockId splice_fallthrough_fixup(Function& fn, const SimpleLoop& loop,
                                 const std::vector<Instruction>& code);

// Retargets side-exit branch `side_exit_idx` through a stub containing
// `code`.  Returns the stub's id.
BlockId splice_side_exit_fixup(Function& fn, const SimpleLoop& loop,
                               std::size_t side_exit_idx,
                               const std::vector<Instruction>& code);

// Appends `code` to the end of the loop's preheader (before its terminator).
void append_to_preheader(Function& fn, const SimpleLoop& loop,
                         const std::vector<Instruction>& code);

// Builds a balanced left-to-right fold `dst = combine(values...)` using the
// given binary opcode (used for accumulator sums and search max/min chains).
std::vector<Instruction> make_fold(Opcode op, Reg dst, const std::vector<Reg>& values);

}  // namespace ilp
