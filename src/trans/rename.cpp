#include "trans/rename.hpp"

#include <unordered_map>
#include <unordered_set>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"

namespace ilp {

namespace {

int rename_in_loop(Function& fn, const SimpleLoop& loop, const Liveness& live) {
  Block& body = fn.block(loop.body);

  // Count defs per register.
  std::unordered_map<Reg, int, RegHash> defs;
  for (const Instruction& in : body.insts)
    if (in.has_dest()) ++defs[in.dst];

  // Registers live into any side-exit target must keep their names.
  std::unordered_set<Reg, RegHash> pinned;
  for (std::size_t se : loop.side_exits) {
    const Instruction& br = body.insts[se];
    live.live_in(br.target).for_each_set([&](std::size_t key) {
      const Reg r{(key & 1) ? RegClass::Fp : RegClass::Int,
                  static_cast<std::uint32_t>(key >> 1)};
      pinned.insert(r);
    });
  }

  // Whether the register's final value must land back in the original name:
  // live around the back edge (live-in of the body) or live at the exit.
  const BlockId exit_id = fn.layout_next(loop.body);

  int split = 0;
  // Collect candidates first: renaming one register does not affect others'
  // def counts.
  std::vector<Reg> candidates;
  for (const auto& [reg, count] : defs)
    if (count >= 2 && pinned.count(reg) == 0) candidates.push_back(reg);

  for (const Reg& reg : candidates) {
    const bool carried = live.is_live_in(loop.body, reg);
    const bool live_at_exit =
        exit_id != kNoBlock && live.is_live_in(exit_id, reg);
    const int total_defs = defs[reg];

    Reg cur = reg;  // name holding the register's current value
    int seen = 0;
    for (Instruction& in : body.insts) {
      // Uses read the current version.
      if (cur != reg) in.replace_uses(reg, cur);
      if (!in.writes(reg)) continue;
      ++seen;
      const bool last = seen == total_defs;
      Reg next;
      if (last && (carried || live_at_exit))
        next = reg;  // final value flows out in the original name
      else
        next = fn.new_reg(reg.cls);
      in.dst = next;
      cur = next;
    }
    ++split;
  }
  return split;
}

}  // namespace

int rename_registers(Function& fn) {
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const Liveness live(cfg);
  int split = 0;
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    split += rename_in_loop(fn, loop, live);
  if (split > 0) fn.renumber();
  return split;
}

}  // namespace ilp
