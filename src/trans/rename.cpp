#include "trans/rename.hpp"

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::rename across compiles.
struct RenameState {
  DenseMap<int> defs;   // RegKey -> #defs in the body
  DenseSet pinned;      // RegKey of registers that must keep their names
  DenseSet added;       // candidate membership
  std::vector<Reg> candidates;
};

int rename_in_loop(Function& fn, const SimpleLoop& loop, const Liveness& live,
                   RenameState& st) {
  Block& body = fn.block(loop.body);

  // Count defs per register.
  st.defs.clear();
  for (const Instruction& in : body.insts)
    if (in.has_dest()) ++st.defs[RegKey::key(in.dst)];

  // Registers live into any side-exit target must keep their names.
  st.pinned.clear();
  for (std::size_t se : loop.side_exits) {
    const Instruction& br = body.insts[se];
    live.live_in(br.target).for_each_set(
        [&](std::size_t key) { st.pinned.insert(key); });
  }

  // Whether the register's final value must land back in the original name:
  // live around the back edge (live-in of the body) or live at the exit.
  const BlockId exit_id = fn.layout_next(loop.body);

  int split = 0;
  // Collect candidates first: renaming one register does not affect others'
  // def counts.  Walk the body in program order (first def decides a
  // register's position) so the renaming sequence — and therefore the fresh
  // register numbers handed out below — is deterministic.
  st.added.clear();
  st.candidates.clear();
  for (const Instruction& in : body.insts) {
    if (!in.has_dest()) continue;
    const Reg reg = in.dst;
    const std::size_t k = RegKey::key(reg);
    if (st.defs.get_or(k, 0) < 2 || st.pinned.contains(k)) continue;
    if (st.added.insert(k)) st.candidates.push_back(reg);
  }

  for (const Reg& reg : st.candidates) {
    const bool carried = live.is_live_in(loop.body, reg);
    const bool live_at_exit =
        exit_id != kNoBlock && live.is_live_in(exit_id, reg);
    const int total_defs = st.defs.get_or(RegKey::key(reg), 0);

    Reg cur = reg;  // name holding the register's current value
    int seen = 0;
    for (Instruction& in : body.insts) {
      // Uses read the current version.
      if (cur != reg) in.replace_uses(reg, cur);
      if (!in.writes(reg)) continue;
      ++seen;
      const bool last = seen == total_defs;
      Reg next;
      if (last && (carried || live_at_exit))
        next = reg;  // final value flows out in the original name
      else
        next = fn.new_reg(reg.cls);
      in.dst = next;
      cur = next;
    }
    ++split;
  }
  return split;
}

}  // namespace

int rename_registers(Function& fn, CompileContext& ctx) {
  const Cfg cfg(fn, &ctx);
  const Dominators dom(cfg);
  const Liveness live(cfg, &ctx);
  RenameState& st = ctx.rename.get<RenameState>();
  int split = 0;
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    split += rename_in_loop(fn, loop, live, st);
  if (split > 0) fn.renumber();
  return split;
}

int rename_registers(Function& fn) {
  return rename_registers(fn, CompileContext::local());
}

}  // namespace ilp
