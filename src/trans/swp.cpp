#include "trans/swp.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/cfg.hpp"
#include "analysis/depgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "sched/scheduler.hpp"
#include "analysis/tripcount.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

// One shift round on `loop`.  Returns the new kernel block id, or kNoBlock
// when the loop is ineligible.
BlockId shift_loop(Function& fn, const SimpleLoop& loop, const MachineModel& machine,
                   const SwpOptions& opts) {
  if (loop.has_side_exits()) return kNoBlock;
  const Block& body0 = fn.block(loop.body);
  if (body0.insts.size() < 3 || body0.insts.size() > opts.max_body_insts) return kNoBlock;
  const auto counted = match_counted_loop(fn, loop);
  if (!counted) return kNoBlock;
  const BlockId exit_id = fn.layout_next(loop.body);
  if (exit_id == kNoBlock) return kNoBlock;

  // Partition the body (minus the back edge) at the midpoint of its
  // dependence-respecting schedule.  Cutting by issue time keeps P closed
  // under dependence predecessors: pred_time <= succ_time on every edge.
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const DepGraph g(fn, loop.body, machine, live, loop.preheader);
  const BlockSchedule sched = list_schedule(g, fn, loop.body, machine);
  int max_time = 0;
  for (std::size_t i = 0; i < body0.insts.size(); ++i) {
    if (i == loop.back_branch) continue;
    max_time = std::max(max_time, sched.issue_time[i]);
  }
  const int cut = (max_time + 1) / 2;
  std::vector<Instruction> P;
  std::vector<Instruction> Q;
  for (std::size_t i = 0; i < body0.insts.size(); ++i) {
    if (i == loop.back_branch) continue;
    (sched.issue_time[i] < cut ? P : Q).push_back(body0.insts[i]);
  }
  if (P.empty() || Q.empty()) return kNoBlock;

  // ---- Runtime trip count, kernel countdown, and the T<2 guard. ----
  const Reg t = emit_trip_count(fn, loop.preheader, *counted);
  const Reg kc = fn.new_int_reg();
  {
    Block& pre = fn.block(loop.preheader);
    const std::size_t pos =
        pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
    std::vector<Instruction> code;
    code.push_back(make_binary_imm(Opcode::ISUB, kc, t, 1));  // kernel runs T-1 times
    code.push_back(make_branch_imm(Opcode::BLT, t, 2, loop.body));  // fallback guard
    pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), code.begin(),
                     code.end());
  }

  // ---- New blocks: PRO -> KERNEL -> EPI, spliced before the fallback. ----
  const std::string base = fn.block(loop.body).name;
  const BlockId pro = fn.insert_block_after(loop.preheader, base + ".pro");
  const BlockId kernel = fn.insert_block_after(pro, base + ".swp");
  const BlockId epi = fn.insert_block_after(kernel, base + ".epi");

  // If the preheader jumped to the body explicitly, enter the pipeline
  // instead; a fallthrough edge now reaches PRO naturally.
  {
    Block& pre = fn.block(loop.preheader);
    if (!pre.insts.empty() && pre.insts.back().op == Opcode::JUMP &&
        pre.insts.back().target == loop.body)
      pre.insts.back().target = pro;
  }

  fn.block(pro).insts = P;

  {
    Block& k = fn.block(kernel);
    k.insts = Q;
    k.insts.insert(k.insts.end(), P.begin(), P.end());
    k.insts.push_back(make_binary_imm(Opcode::ISUB, kc, kc, 1));
    k.insts.push_back(make_branch_imm(Opcode::BGT, kc, 0, kernel));
  }

  {
    Block& e = fn.block(epi);
    e.insts = Q;
    e.insts.push_back(make_jump(exit_id));
  }
  fn.renumber();
  return kernel;
}

}  // namespace

SwpResult software_pipeline(Function& fn, const MachineModel& machine,
                            const SwpOptions& opts) {
  SwpResult res;
  // Fallback copies (the original loops kept behind the T<2 guard) must
  // never themselves be pipelined — they are the cold path.
  std::unordered_set<BlockId> fallbacks;

  for (int round = 0; round < opts.stages - 1; ++round) {
    std::unordered_set<BlockId> done_this_round;  // kernels made or rejected
    bool any = false;
    bool progress = true;
    while (progress) {
      progress = false;
      const Cfg cfg(fn);
      const Dominators dom(cfg);
      for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
        if (fallbacks.count(loop.body) || done_this_round.count(loop.body)) continue;
        const BlockId kernel = shift_loop(fn, loop, machine, opts);
        if (kernel == kNoBlock) {
          done_this_round.insert(loop.body);
          continue;
        }
        fallbacks.insert(loop.body);
        done_this_round.insert(kernel);
        ++res.shifts_applied;
        if (round == 0) ++res.loops_pipelined;
        any = true;
        progress = true;
        break;  // blocks changed; re-derive the loop list
      }
    }
    if (!any) break;
  }
  return res;
}

}  // namespace ilp
