// Software pipelining by iterated loop shifting (extension).
//
// The paper's Related Work cites software pipelining (Rau's Cydra 5 work,
// Lam, Aiken/Nicolau) and notes that "these methods also benefit from
// dependence elimination but the effect of the transformations on these
// methods is not evaluated in this study".  This module supplies that
// evaluation with a correctness-first formulation: instead of a modulo
// scheduler with modulo variable expansion, each pipelining round *shifts*
// the loop — a dependence-closed early partition P of the body moves across
// the back edge:
//
//     original stream:   P(1) Q(1) P(2) Q(2) ... P(T) Q(T)
//     shifted:           [P(1)] { Q(i) P(i+1) } x (T-1)  [Q(T)]
//
// The global instruction stream is unchanged (P is closed under dependence
// predecessors, so Q(i) never feeds P(i) and the per-iteration reordering is
// dependence-free), which makes the transformation semantics-preserving by
// construction; the existing superblock scheduler then overlaps Q(i) with
// P(i+1) inside the new kernel — the same overlap a modulo schedule of II =
// makespan/2 would expose.  Applying the shift k-1 times yields a k-stage
// pipeline (each round re-partitions the current kernel).
//
// Eligibility per loop (conservative): simple counted loop, no side exits,
// bounded body size.  The kernel runs T-1 times under a fresh countdown
// counter; a runtime guard (T >= 2) falls back to the original loop, which is
// kept intact.
#pragma once

#include "ir/function.hpp"
#include "machine/machine.hpp"

namespace ilp {

struct SwpOptions {
  int stages = 2;                    // 2 => one shift, 3 => two shifts, ...
  std::size_t max_body_insts = 96;   // eligibility bound per round
};

struct SwpResult {
  int loops_pipelined = 0;  // loops shifted at least once
  int shifts_applied = 0;   // total shift rounds across all loops
};

// Applies software pipelining to every eligible innermost loop.  Run after
// the level transformations and before final scheduling.
SwpResult software_pipeline(Function& fn, const MachineModel& machine,
                            const SwpOptions& opts = {});

}  // namespace ilp
