// Loop interchange: swap a perfect 2-deep nest so the smaller-stride
// subscript varies in the innermost loop (paper §2's "better-shaped loops"
// feeding unrolling).  Mechanically the two loops trade control structure:
//
//   P:  [.., IMOV i,lo, .., BGT i,hi -> E]      P:  [.., <j prologue>, IMOV j,lo,
//   XH: [<j prologue>, IMOV j,lo,                        BGT j,hi -> E]
//        BGT j,hi -> XL]                        XH: [IMOV i,lo, BGT i,hi -> XL]
//   B:  [body.., j+=1, BLE j,hi -> B]     =>    B:  [body.., i+=1, BLE i,hi -> B]
//   XL: [i+=1, BLE i,hi -> XH]                  XL: [j+=1, BLE j,hi -> XH]
//   E:                                          E:
//
// The result is again two canonical loops, so downstream passes (tiling,
// unrolling, scheduling) see the same shape they always do.
#include <cstdlib>

#include "analysis/depdist.hpp"
#include "trans/nest/internal.hpp"
#include "trans/nest/nest.hpp"

namespace ilp {

namespace nest_detail {

void swap_control(Function& fn, const CanonLoop& outer, BlockId inner_head,
                  BlockId inner_tail) {
  // Snapshot the moving pieces before any mutation.
  Block& pre = fn.block(outer.pre);
  const Instruction x_init = pre.insts[outer.init_idx];
  Instruction x_guard = pre.insts.back();

  Block& shared = fn.block(outer.header);
  const std::vector<Instruction> prologue(shared.insts.begin(), shared.insts.end() - 1);
  Instruction y_guard = shared.insts.back();

  Block& tail = fn.block(inner_tail);
  const Instruction y_upd = tail.insts[tail.insts.size() - 2];
  Instruction y_br = tail.insts.back();

  Block& outer_latch = fn.block(outer.latch);
  const Instruction x_upd = outer_latch.insts[0];
  Instruction x_br = outer_latch.insts[1];

  // P: drop the outer init + guard, hoist the inner prologue, and let the
  // inner guard take over zero-trip protection of the whole nest.
  pre.insts.pop_back();
  pre.insts.erase(pre.insts.begin() + static_cast<std::ptrdiff_t>(outer.init_idx));
  pre.insts.insert(pre.insts.end(), prologue.begin(), prologue.end());
  y_guard.target = outer.exit;
  pre.insts.push_back(y_guard);

  // XH becomes the (now inner) outer-variable loop's prologue + guard.
  x_guard.target = outer.latch;
  shared.insts = {x_init, x_guard};

  // The body's back edge now iterates the outer variable.
  tail.insts.pop_back();
  tail.insts.pop_back();
  x_br.target = inner_head;
  tail.insts.push_back(x_upd);
  tail.insts.push_back(x_br);

  // The old outer latch becomes the new outermost back edge.
  y_br.target = outer.header;
  outer_latch.insts = {y_upd, y_br};
}

}  // namespace nest_detail

namespace {

bool should_interchange(const Function& fn, const CanonLoop& outer, const CanonLoop& inner,
                        const NestOptions& opts) {
  if (opts.unsafe_skip_legality) {
    if (!interchange_structural(fn, outer, inner)) return false;
  } else if (!interchange_legal(fn, outer, inner)) {
    return false;
  }
  // Profitability: swap only when the inner subscript stride dominates —
  // afterwards the small-stride axis runs innermost (spatial locality, and
  // unit-stride recurrences for the modulo scheduler).
  const NestStrides s = nest_strides(fn, outer, inner);
  return s.known && s.inner > s.outer;
}

}  // namespace

int interchange_loops(Function& fn, const NestOptions& opts) {
  int swapped = 0;
  for (int round = 0; round < 8; ++round) {
    const std::vector<CanonLoop> loops = find_canonical_loops(fn);
    bool changed = false;
    for (const CanonLoop& outer : loops) {
      for (const CanonLoop& inner : loops) {
        if (outer.header != inner.pre) continue;
        if (!should_interchange(fn, outer, inner, opts)) continue;
        nest_detail::swap_control(fn, outer, inner.header, inner.header);
        fn.renumber();
        ++swapped;
        changed = true;
        break;
      }
      if (changed) break;  // block contents moved: re-analyze from scratch
    }
    if (!changed) break;
  }
  return swapped;
}

}  // namespace ilp
