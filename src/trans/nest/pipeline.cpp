#include "trans/nest/nest.hpp"

namespace ilp {

NestStats run_nest_pipeline(Function& fn, const NestOptions& opts) {
  NestStats s;
  if (!opts.any()) return s;
  // Fusion first (bigger bodies for the others to work with), then the
  // reordering passes, fission last: its split loops deliberately leave the
  // canonical guarded shape, so nothing downstream of it re-analyzes nests.
  if (opts.fuse) s.fused = fuse_loops(fn, opts);
  if (opts.interchange) s.interchanged = interchange_loops(fn, opts);
  if (opts.tile) s.tiled = tile_loops(fn, opts);
  if (opts.fission) s.fissioned = fission_loops(fn, opts);
  return s;
}

}  // namespace ilp
