// Shared mechanics between interchange and tiling.
#pragma once

#include "analysis/depdist.hpp"
#include "ir/function.hpp"

namespace ilp::nest_detail {

// Swaps control of a perfect pair: the outer loop described by `outer` and an
// inner control structure whose prologue + zero-trip guard sit in
// outer.header and whose [update, back branch] tail sits in `inner_tail`
// (== the inner header for plain interchange, the strip latch for tiling),
// back-branching to `inner_head`.  After the swap the previously-inner
// control is outermost and the whole region is again in canonical shape.
// Callers are responsible for the structural preconditions
// (interchange_structural) and must renumber the function afterwards.
void swap_control(Function& fn, const CanonLoop& outer, BlockId inner_head,
                  BlockId inner_tail);

}  // namespace ilp::nest_detail
