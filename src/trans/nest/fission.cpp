// Loop fission (distribution): split a single-block counted loop at its
// maximal strongly-connected dependence regions, giving each region its own
// loop.  Smaller bodies lower register pressure under high unroll factors and
// isolate recurrences so DOALL-shaped statements schedule freely (the
// ICC-inspired fission model from PAPERS.md).
//
//   P:  [.., IMOV i,lo, guard -> E]          P:  unchanged (the one guard
//   B:  [S1.., S2.., i+=1, BLE -> B]              covers every piece: equal
//   E:                                            trip counts by construction)
//                                            B:  [S1.., i+=1, BLE -> B]
//                                            Pk: [IMOV ik, lo]
//                                            Bk: [S2[i:=ik].., ik+=1, BLE -> Bk]
//                                            E:  unchanged
//
// The dependence graph: register def/use relations are bidirectional (any
// two statements touching a body-defined scalar stay together — this keeps
// reductions intact), memory edges are oriented by the sign of the iteration
// distance (analysis/depdist loop_ref_dep_signs), and unanalyzable pairs get
// both directions.  A dependence cycle therefore always lands inside one
// SCC and is never split — fission has no illegal outcome, only finer or
// coarser partitions.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/depdist.hpp"
#include "trans/nest/nest.hpp"

namespace ilp {

namespace {

// Tarjan's algorithm, iterative; returns the component id per node with
// components numbered in reverse topological order of the condensation.
struct SccFinder {
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<int> comp, low, num;
  std::vector<std::size_t> stack;
  std::vector<bool> on_stack;
  int counter = 0, comps = 0;

  explicit SccFinder(const std::vector<std::vector<std::size_t>>& a)
      : adj(a), comp(a.size(), -1), low(a.size(), 0), num(a.size(), -1),
        on_stack(a.size(), false) {}

  void run(std::size_t root) {
    // Explicit DFS frame: (node, next child index).
    std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
    num[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      auto& [v, child] = frames.back();
      if (child < adj[v].size()) {
        const std::size_t w = adj[v][child++];
        if (num[w] == -1) {
          num[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.emplace_back(w, 0);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], num[w]);
        }
        continue;
      }
      if (low[v] == num[v]) {
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = comps;
          if (w == v) break;
        }
        ++comps;
      }
      const std::size_t done = v;
      frames.pop_back();
      if (!frames.empty())
        low[frames.back().first] = std::min(low[frames.back().first], low[done]);
    }
  }
};

// Partition the body statements of `loop` into dependence regions, ordered so
// every edge points forward.  Empty result means "don't split".
std::vector<std::vector<std::size_t>> dependence_regions(const Function& fn,
                                                         const CanonLoop& loop) {
  const Block& body = fn.block(loop.header);
  if (body.insts.size() < 4) return {};  // need at least two statements
  const std::size_t n = body.insts.size() - 2;
  for (std::size_t k = 0; k + 1 < body.insts.size(); ++k)
    if (body.insts[k].is_control()) return {};

  std::vector<std::vector<std::size_t>> adj(n);
  auto edge = [&](std::size_t a, std::size_t b) { adj[a].push_back(b); };

  // Register relations: every pair of statements touching the same
  // body-defined register is welded together (covers flow, anti, output, and
  // loop-carried scalar recurrences in one rule).
  std::unordered_map<std::size_t, std::vector<std::size_t>> touchers;
  for (std::size_t k = 0; k < n; ++k)
    if (body.insts[k].has_dest()) touchers[RegKey::key(body.insts[k].dst)];
  for (std::size_t k = 0; k < n; ++k) {
    const Instruction& in = body.insts[k];
    if (in.has_dest()) {
      const auto it = touchers.find(RegKey::key(in.dst));
      if (it != touchers.end()) it->second.push_back(k);
    }
    for (const Reg& u : in.uses()) {
      if (u == loop.iv) continue;
      const auto it = touchers.find(RegKey::key(u));
      if (it != touchers.end() &&
          (it->second.empty() || it->second.back() != k))
        it->second.push_back(k);
    }
  }
  for (const auto& [key, nodes] : touchers) {
    (void)key;
    for (std::size_t k = 1; k < nodes.size(); ++k) {
      edge(nodes[k - 1], nodes[k]);
      edge(nodes[k], nodes[k - 1]);
    }
  }

  // Memory edges, oriented by the iteration-distance sign.
  for (std::size_t p = 0; p < n; ++p) {
    if (!body.insts[p].is_memory()) continue;
    for (std::size_t q = p + 1; q < n; ++q) {
      if (!body.insts[q].is_memory()) continue;
      if (!body.insts[p].is_store() && !body.insts[q].is_store()) continue;
      const DepSigns s = loop_ref_dep_signs(fn, loop, p, q);
      if (s.pos || s.zero) edge(p, q);
      if (s.neg) edge(q, p);
    }
  }

  SccFinder scc(adj);
  for (std::size_t k = 0; k < n; ++k)
    if (scc.num[k] == -1) scc.run(k);
  if (scc.comps < 2) return {};

  // Tarjan numbers components in reverse topological order, so ordering
  // regions by descending component id makes every dependence edge point
  // into the same or a later region.  Statements keep program order inside a
  // region.
  std::vector<std::vector<std::size_t>> regions(static_cast<std::size_t>(scc.comps));
  for (std::size_t k = 0; k < n; ++k)
    regions[static_cast<std::size_t>(scc.comps - 1 - scc.comp[k])].push_back(k);
  return regions;
}

bool split_loop(Function& fn, const CanonLoop& loop) {
  if (!loop.single_block()) return false;
  if (loop.lo_reg == loop.iv) return false;
  const Block& body0 = fn.block(loop.header);
  // The split prologues re-read the bound registers after the original body
  // ran; the body must leave them alone (the canonical shape already bans
  // writes of iv/hi, this adds lo).
  for (const Instruction& in : body0.insts)
    if (in.has_dest() && in.dst == loop.lo_reg) return false;

  const auto regions = dependence_regions(fn, loop);
  if (regions.size() < 2) return false;

  const std::vector<Instruction> orig = body0.insts;
  const Instruction upd = orig[orig.size() - 2];
  const Instruction br = orig.back();

  struct NewPiece {
    BlockId pre, body;
    Reg iv;
    const std::vector<std::size_t>* nodes;
  };
  std::vector<NewPiece> pieces;
  BlockId after = loop.header;
  for (std::size_t g = 1; g < regions.size(); ++g) {
    NewPiece p;
    p.iv = fn.new_int_reg();
    p.pre = fn.insert_block_after(after, "fiss.pre." + std::to_string(g));
    p.body = fn.insert_block_after(p.pre, "fiss." + std::to_string(g));
    p.nodes = &regions[g];
    after = p.body;
    pieces.push_back(p);
  }

  std::vector<Instruction> first;
  for (const std::size_t idx : regions[0]) first.push_back(orig[idx]);
  first.push_back(upd);
  first.push_back(br);
  fn.block(loop.header).insts = std::move(first);

  for (const NewPiece& p : pieces) {
    fn.block(p.pre).insts = {make_unary(Opcode::IMOV, p.iv, loop.lo_reg)};
    auto& insts = fn.block(p.body).insts;
    for (const std::size_t idx : *p.nodes) {
      Instruction in = orig[idx];
      in.replace_uses(loop.iv, p.iv);
      insts.push_back(in);
    }
    insts.push_back(make_binary_imm(Opcode::IADD, p.iv, p.iv, loop.step));
    insts.push_back(make_branch(loop.step > 0 ? Opcode::BLE : Opcode::BGE, p.iv,
                                loop.hi_reg, p.body));
  }
  fn.renumber();
  return true;
}

}  // namespace

int fission_loops(Function& fn, const NestOptions& opts) {
  (void)opts;  // fission has no illegal outcome; nothing to unsafely skip
  int split = 0;
  for (int round = 0; round < 16; ++round) {
    const std::vector<CanonLoop> loops = find_canonical_loops(fn);
    bool changed = false;
    for (const CanonLoop& loop : loops) {
      if (!split_loop(fn, loop)) continue;
      ++split;
      changed = true;
      break;  // block layout changed: re-analyze
    }
    if (!changed) break;
  }
  return split;
}

}  // namespace ilp
