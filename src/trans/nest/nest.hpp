// Affine loop-nest restructuring (ROADMAP item 2): interchange, fusion,
// fission, and tiling over the frontend's canonical lowered loop shape,
// gated by the direction/distance-vector legality layer in
// analysis/depdist.  These run as pre-passes *before* the conventional
// optimizations in trans/level.cpp — LICM/ivopt rewrite subscripts into
// pointer-bumping form, after which the affine structure is unrecoverable.
//
// Legality summary (DESIGN.md §5d has the full rules with examples):
//   interchange  no dependence with direction (<, >); no carried scalar
//                recurrence; nothing body-computed observable after the nest
//   fuse         conformable constant bounds, disjoint scalar def/use across
//                bodies, and no backward loop-carried memory dependence
//                (second-body reference at iteration y against a first-body
//                reference at x > y)
//   fission      splits at the maximal strongly-connected dependence regions;
//                a dependence cycle is never separated
//   tile         strip-mine (always order-preserving) + interchange, so the
//                legality test is exactly the interchange test
#pragma once

#include "ir/function.hpp"

namespace ilp {

struct NestOptions {
  bool interchange = false;
  bool fuse = false;
  bool fission = false;
  bool tile = false;
  int tile_size = 16;
  // Test-only: bypass the dependence/scalar legality layer while keeping the
  // structural (mechanical-validity) checks.  Exists so the semantic oracle
  // can prove it detects the miscompiles an unchecked transformation
  // produces; never set on a production path.
  bool unsafe_skip_legality = false;

  [[nodiscard]] bool any() const { return interchange || fuse || fission || tile; }
  bool operator==(const NestOptions&) const = default;
};

// Each pass returns the number of transformations applied (loop pairs
// swapped, pairs fused, loops split, nests tiled) and leaves the function
// verifier-clean.  Zero means the function is untouched.
int interchange_loops(Function& fn, const NestOptions& opts);
int fuse_loops(Function& fn, const NestOptions& opts);
int fission_loops(Function& fn, const NestOptions& opts);
int tile_loops(Function& fn, const NestOptions& opts);

struct NestStats {
  int interchanged = 0;
  int fused = 0;
  int fissioned = 0;
  int tiled = 0;

  [[nodiscard]] int total() const { return interchanged + fused + fissioned + tiled; }
};

// Runs the enabled passes in the canonical order fuse -> interchange ->
// tile -> fission (fusion first enlarges bodies for the others; fission last
// because its split loops intentionally leave the canonical shape).
NestStats run_nest_pipeline(Function& fn, const NestOptions& opts);

}  // namespace ilp
