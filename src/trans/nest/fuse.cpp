// Loop fusion: merge two adjacent conformable counted loops into one body,
// halving loop overhead and exposing cross-statement ILP to unrolling and
// scheduling.  Layout before and after:
//
//   P1: [.., IMOV i,lo, guard1 -> E1]        P1: unchanged
//   B1: [S1.., i+=1, BLE i,hi -> B1]         B1: [S1.., S2[j:=i].., i+=1, BLE -> B1]
//   E1: [<pure>, IMOV j,lo, guard2 -> E2]    E1: [<pure>, IMOV j,lo]      (guard gone)
//   B2: [S2.., j+=1, BLE j,hi -> B2]         B2: []                       (empty)
//   E2:                                      E2: unchanged
//
// Legality: equal constant bounds and step, no scalar flow between the two
// bodies or from the inter-loop block into the second body (that block now
// executes after the fused loop), the second induction variable unobservable,
// and no backward loop-carried memory dependence (analysis/depdist
// fusion_preventing_dep).
#include <cstdlib>
#include <unordered_set>

#include "analysis/depdist.hpp"
#include "trans/nest/nest.hpp"

namespace ilp {

namespace {

bool pure_scalar(const Instruction& in) {
  return in.has_dest() && !in.is_memory() && !in.is_control();
}

bool body_straightline(const Block& b) {
  for (std::size_t k = 0; k + 1 < b.insts.size(); ++k)
    if (b.insts[k].is_control()) return false;
  return true;
}

void collect_body_defs_uses(const Block& b, const Reg& iv,
                            std::unordered_set<std::size_t>& defs,
                            std::unordered_set<std::size_t>& uses) {
  for (std::size_t k = 0; k + 2 < b.insts.size(); ++k) {  // skip [update, branch]
    const Instruction& in = b.insts[k];
    if (in.has_dest() && in.dst != iv) defs.insert(RegKey::key(in.dst));
    for (const Reg& u : in.uses())
      if (u != iv) uses.insert(RegKey::key(u));
  }
}

bool intersects(const std::unordered_set<std::size_t>& a,
                const std::unordered_set<std::size_t>& b) {
  for (const std::size_t k : a)
    if (b.count(k) != 0) return true;
  return false;
}

bool fusable(const Function& fn, const CanonLoop& l1, const CanonLoop& l2,
             const NestOptions& opts) {
  if (!l1.single_block() || !l2.single_block()) return false;
  if (l1.iv == l2.iv) return false;
  if (!l1.lo_known || !l1.hi_known || !l2.lo_known || !l2.hi_known) return false;
  if (l1.lo != l2.lo || l1.hi != l2.hi || l1.step != l2.step) return false;

  const Block& b1 = fn.block(l1.header);
  const Block& b2 = fn.block(l2.header);
  if (!body_straightline(b1) || !body_straightline(b2)) return false;
  if (b1.insts.size() < 2 || b2.insts.size() < 2) return false;

  // The inter-loop block must be a pure scalar prologue: it is demoted from
  // "between the loops" to "after the fused loop".
  const Block& mid = fn.block(l1.exit);
  for (std::size_t k = 0; k + 1 < mid.insts.size(); ++k)
    if (!pure_scalar(mid.insts[k])) return false;

  // The second body runs on the first induction variable after fusion; it
  // must not have touched that register under its original meaning (the
  // final value of the first loop's counter).
  for (std::size_t k = 0; k + 2 < b2.insts.size(); ++k) {
    const Instruction& in = b2.insts[k];
    if (in.has_dest() && in.dst == l1.iv) return false;
    for (const Reg& u : in.uses())
      if (u == l1.iv) return false;
  }

  std::unordered_set<std::size_t> defs1, uses1, defs2, uses2;
  collect_body_defs_uses(b1, l1.iv, defs1, uses1);
  collect_body_defs_uses(b2, l2.iv, defs2, uses2);
  // Include the first loop's own bound/update reads: the second body must not
  // clobber them either.
  for (std::size_t k = b1.insts.size() - 2; k < b1.insts.size(); ++k)
    for (const Reg& u : b1.insts[k].uses())
      if (u != l1.iv) uses1.insert(RegKey::key(u));

  std::unordered_set<std::size_t> mid_defs, mid_uses;
  for (std::size_t k = 0; k + 1 < mid.insts.size(); ++k) {
    mid_defs.insert(RegKey::key(mid.insts[k].dst));
    for (const Reg& u : mid.insts[k].uses()) mid_uses.insert(RegKey::key(u));
  }

  // No scalar flow in either direction between the bodies, none from the
  // inter-loop block into the second body, and the inter-loop block must not
  // observe second-body values (it now runs after them).
  if (intersects(defs1, uses2) || intersects(defs2, uses1)) return false;
  if (intersects(mid_defs, uses2) || intersects(defs2, mid_uses)) return false;

  // The second induction variable's final value changes (it stays at lo):
  // nothing outside the dropped control may observe it.
  const std::size_t iv2 = RegKey::key(l2.iv);
  for (const Reg& r : fn.live_out())
    if (RegKey::key(r) == iv2) return false;
  for (const auto& blk : fn.blocks()) {
    if (blk.id == l2.header) continue;
    const bool is_mid = blk.id == l1.exit;
    for (std::size_t k = 0; k < blk.insts.size(); ++k) {
      if (is_mid && k + 1 == blk.insts.size()) continue;  // guard2 is deleted
      for (const Reg& u : blk.insts[k].uses())
        if (RegKey::key(u) == iv2) return false;
    }
  }

  if (opts.unsafe_skip_legality) return true;
  return !fusion_preventing_dep(fn, l1, l2);
}

void do_fuse(Function& fn, const CanonLoop& l1, const CanonLoop& l2) {
  Block& b1 = fn.block(l1.header);
  Block& b2 = fn.block(l2.header);
  Block& mid = fn.block(l1.exit);

  const Instruction upd1 = b1.insts[b1.insts.size() - 2];
  const Instruction br1 = b1.insts.back();
  b1.insts.resize(b1.insts.size() - 2);
  for (std::size_t k = 0; k + 2 < b2.insts.size(); ++k) {
    Instruction in = b2.insts[k];
    in.replace_uses(l2.iv, l1.iv);
    b1.insts.push_back(in);
  }
  b1.insts.push_back(upd1);
  b1.insts.push_back(br1);

  mid.insts.pop_back();  // guard2; the dead bound/init defs fall to DCE later
  b2.insts.clear();      // empty block: falls through to the old exit
}

}  // namespace

int fuse_loops(Function& fn, const NestOptions& opts) {
  int fused = 0;
  for (int round = 0; round < 8; ++round) {
    const std::vector<CanonLoop> loops = find_canonical_loops(fn);
    bool changed = false;
    for (const CanonLoop& l1 : loops) {
      for (const CanonLoop& l2 : loops) {
        if (l1.exit != l2.pre) continue;
        if (!fusable(fn, l1, l2, opts)) continue;
        do_fuse(fn, l1, l2);
        fn.renumber();
        ++fused;
        changed = true;
        break;
      }
      if (changed) break;
    }
    if (!changed) break;
  }
  return fused;
}

}  // namespace ilp
