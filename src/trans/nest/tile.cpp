// Loop tiling: strip-mine the inner loop of a perfect 2-deep nest into
// tile-sized chunks and interchange the tile loop outward, so each tile of
// the inner axis is revisited across all outer iterations before moving on
// (cache blocking).  Strip-mining alone preserves iteration order — the
// reordering comes entirely from the interchange step, which is why the
// legality test is exactly interchange legality on the original (i, j) nest.
//
//   for i = lo_i..hi_i            for jj = lo_j..hi_j step T
//     for j = lo_j..hi_j    =>      for i = lo_i..hi_i
//       body(i, j)                    for j = jj..min(jj+T-1, hi_j)
//                                       body(i, j)
//
// The lowered result keeps the jj and i loops in canonical shape; the
// per-tile j loop is a guard-free do-while (the jj guard proves it runs).
#include <cstdlib>

#include "analysis/depdist.hpp"
#include "trans/nest/internal.hpp"
#include "trans/nest/nest.hpp"

namespace ilp {

namespace {

bool should_tile(const Function& fn, const CanonLoop& outer, const CanonLoop& inner,
                 const NestOptions& opts) {
  if (inner.step != 1 || opts.tile_size < 2) return false;
  if (inner.trip_known && inner.trip <= opts.tile_size) return false;  // one tile: no-op
  // Strip-mining renames the inner init's destination to the tile counter;
  // no other prologue instruction may read the inner iv (the guard, which
  // is renamed along with it, is the only expected reader).
  const Block& shared = fn.block(outer.header);
  for (std::size_t k = 0; k + 1 < shared.insts.size(); ++k)
    for (const Reg& u : shared.insts[k].uses())
      if (u == inner.iv) return false;
  if (opts.unsafe_skip_legality) return interchange_structural(fn, outer, inner);
  return interchange_legal(fn, outer, inner);
}

void do_tile(Function& fn, const CanonLoop& outer, const CanonLoop& inner, std::int64_t T) {
  const Reg jj = fn.new_int_reg();
  const Reg tile_end = fn.new_int_reg();
  const Reg hc = fn.new_int_reg();

  // Strip-mine: the shared block's inner init/guard now drive the tile
  // counter jj; a new head block re-derives j and the clamped tile bound.
  {
    Block& shared = fn.block(outer.header);
    shared.insts[inner.init_idx].dst = jj;  // IMOV jj, lo_j
    shared.insts.back().src1 = jj;          // BGT jj, hi_j -> exit
  }
  const BlockId h2 = fn.insert_block_after(outer.header, "tile.head");
  const BlockId l2 = fn.insert_block_after(inner.header, "tile.latch");
  fn.block(h2).insts = {
      make_unary(Opcode::IMOV, inner.iv, jj),
      make_binary_imm(Opcode::IADD, tile_end, jj, T - 1),
      make_binary(Opcode::IMIN, hc, tile_end, inner.hi_reg),
  };
  fn.block(inner.header).insts.back().src2 = hc;  // BLE j, hc -> body
  fn.block(l2).insts = {
      make_binary_imm(Opcode::IADD, jj, jj, T),
      make_branch(Opcode::BLE, jj, inner.hi_reg, h2),
  };

  // Interchange the (still order-preserving) strip structure: the tile loop
  // moves outermost, the original outer loop iterates per tile.
  nest_detail::swap_control(fn, outer, h2, l2);
  fn.renumber();
}

}  // namespace

int tile_loops(Function& fn, const NestOptions& opts) {
  int tiled = 0;
  for (int round = 0; round < 8; ++round) {
    const std::vector<CanonLoop> loops = find_canonical_loops(fn);
    bool changed = false;
    for (const CanonLoop& outer : loops) {
      for (const CanonLoop& inner : loops) {
        if (outer.header != inner.pre) continue;
        if (!should_tile(fn, outer, inner, opts)) continue;
        do_tile(fn, outer, inner, opts.tile_size);
        ++tiled;
        changed = true;
        break;
      }
      if (changed) break;
    }
    if (!changed) break;
  }
  return tiled;
}

}  // namespace ilp
