// Loop unrolling (paper Section 2, "Loop Unrolling").
//
// A loop unrolled N times has N-1 copies of the loop body appended to the
// original.  For counted loops ("if the iteration count is known on loop
// entry") the intermediate control transfers are removed by executing the
// first ((T-1) mod N) + 1 iterations in a *preconditioning loop* — the
// original body, retargeted at a runtime-computed intermediate bound — so the
// main unrolled loop always runs a multiple of N iterations:
//
//   preheader:  ...original...  T = max(1, ceil((bound-iv)/step))   (runtime)
//               rem = ((T-1) mod N) + 1;  pre_bound = iv + rem*step
//   PRE:        original body, back edge vs pre_bound
//   GUARD:      if exit-condition holds -> EXIT        (skip empty main loop)
//   MAIN:       N copies of the body, inner back edges removed,
//               final back edge vs the original bound
//   EXIT:       ...
//
// rem is in 1..N, so the do-while-shaped preconditioning loop never
// zero-trips.  Non-counted loops (data-dependent exits, e.g. Figure 6) are
// unrolled in place with the intermediate back edges inverted into side
// exits.  The unroll factor is the paper's: at most `max_factor` (8), bounded
// by a maximum unrolled body size.
#pragma once

#include "ir/function.hpp"

namespace ilp {

struct UnrollOptions {
  int max_factor = 8;
  std::size_t max_body_insts = 160;  // cap on the *unrolled* body size
  // Merge the counted IV's per-copy updates into one "iv += N*step" with the
  // copy offsets folded into addressing constants, as the paper's Figure 5c
  // shows ("r1 = r1 + 3").  Figure 1c/1d illustrate the unmerged form; tests
  // reproducing those disable this.
  bool merge_counter_updates = true;
};

// Unrolls every simple innermost loop; returns the number of loops unrolled.
int unroll_loops(Function& fn, const UnrollOptions& opts = {});

}  // namespace ilp
