#include "trans/accexpand.hpp"

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"
#include "trans/expand_common.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::accexpand across compiles.
struct AccExpandState {
  DenseMap<int> defs;  // RegKey -> #defs in the body
  std::vector<Reg> def_order;
};

enum class AccKind { None, Additive, Multiplicative };

// Classifies one definition of V as an accumulation step.
AccKind classify_def(const Instruction& in, const Reg& v) {
  switch (in.op) {
    case Opcode::IADD:
    case Opcode::FADD:
      // V = V + x or V = x + V.
      if (in.src1 == v || (!in.src2_is_imm && in.src2 == v)) return AccKind::Additive;
      return AccKind::None;
    case Opcode::ISUB:
    case Opcode::FSUB:
      // Only V = V - x is an accumulation (x - V is not).
      if (in.src1 == v) return AccKind::Additive;
      return AccKind::None;
    case Opcode::IMUL:
    case Opcode::FMUL:
      if (in.src1 == v || (!in.src2_is_imm && in.src2 == v))
        return AccKind::Multiplicative;
      return AccKind::None;
    default:
      return AccKind::None;
  }
}

struct Candidate {
  Reg v;
  AccKind kind = AccKind::None;
  std::vector<std::size_t> def_idx;
};

int expand_in_loop(Function& fn, const SimpleLoop& loop, const AccExpandOptions& opts,
                   AccExpandState& st) {
  // Phase 1: classify candidates without mutating anything (block references
  // are invalidated once fixup blocks get spliced in).
  std::vector<Candidate> candidates;
  {
    const Block& body = fn.block(loop.body);
    // Count defs per register, remembering first-def program order so the
    // expansion sequence (and the temporaries it allocates) is deterministic.
    st.defs.clear();
    st.def_order.clear();
    for (const Instruction& in : body.insts)
      if (in.has_dest() && ++st.defs[RegKey::key(in.dst)] == 1)
        st.def_order.push_back(in.dst);

    for (const Reg& v : st.def_order) {
      if (st.defs.get_or(RegKey::key(v), 0) < 2) continue;
      // Condition 1+2: every def of v is an accumulation of a uniform kind
      // and every read of v inside the loop is the self-operand of such a
      // def.
      Candidate cand;
      cand.v = v;
      bool ok = true;
      for (std::size_t i = 0; i < body.insts.size() && ok; ++i) {
        const Instruction& in = body.insts[i];
        if (in.writes(v)) {
          const AccKind k = classify_def(in, v);
          if (k == AccKind::None || (cand.kind != AccKind::None && k != cand.kind)) {
            ok = false;
            break;
          }
          cand.kind = k;
          cand.def_idx.push_back(i);
          // The def may read v only as its self-operand; a def like
          // v = v + v accumulates nonlinearly: reject.
          const int reads = (in.src1 == v ? 1 : 0) +
                            (!in.src2_is_imm && in.src2 == v ? 1 : 0);
          if (reads != 1) ok = false;
        } else if (in.reads(v)) {
          ok = false;  // used outside accumulation instructions
        }
      }
      if (!ok || cand.kind == AccKind::None) continue;
      if (cand.kind == AccKind::Multiplicative && !opts.expand_products) continue;
      candidates.push_back(std::move(cand));
    }
  }

  // Phase 2: apply.
  int expanded = 0;
  for (const Candidate& cand : candidates) {
    const Reg v = cand.v;
    const AccKind kind = cand.kind;
    const std::vector<std::size_t>& def_idx = cand.def_idx;
    const std::size_t k = def_idx.size();
    const bool fp = v.cls == RegClass::Fp;
    const Opcode sum_op = kind == AccKind::Additive ? (fp ? Opcode::FADD : Opcode::IADD)
                                                    : (fp ? Opcode::FMUL : Opcode::IMUL);

    // Allocate temporaries; init first to V, rest to the identity.
    std::vector<Reg> temps;
    std::vector<Instruction> init;
    for (std::size_t i = 0; i < k; ++i) {
      const Reg t = fn.new_reg(v.cls);
      temps.push_back(t);
      if (i == 0) {
        init.push_back(make_unary(fp ? Opcode::FMOV : Opcode::IMOV, t, v));
      } else if (kind == AccKind::Additive) {
        init.push_back(fp ? make_fldi(t, 0.0) : make_ldi(t, 0));
      } else {
        init.push_back(fp ? make_fldi(t, 1.0) : make_ldi(t, 1));
      }
    }
    append_to_preheader(fn, loop, init);

    // Replace each definition's register by its temporary.
    for (std::size_t i = 0; i < k; ++i) {
      Instruction& in = fn.block(loop.body).insts[def_idx[i]];
      in.replace_uses(v, temps[i]);
      in.dst = temps[i];
    }

    // Exit fixups: V = fold(temps).  Identical on every exit path.
    const std::vector<Instruction> fix = make_fold(sum_op, v, temps);
    splice_fallthrough_fixup(fn, loop, fix);
    for (std::size_t se : loop.side_exits) splice_side_exit_fixup(fn, loop, se, fix);
    ++expanded;
  }
  return expanded;
}

}  // namespace

int accumulator_expansion(Function& fn, const AccExpandOptions& opts,
                          CompileContext& ctx) {
  const Cfg cfg(fn, &ctx);
  const Dominators dom(cfg);
  AccExpandState& st = ctx.accexpand.get<AccExpandState>();
  int n = 0;
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    n += expand_in_loop(fn, loop, opts, st);
  if (n > 0) fn.renumber();
  return n;
}

int accumulator_expansion(Function& fn, const AccExpandOptions& opts) {
  return accumulator_expansion(fn, opts, CompileContext::local());
}

}  // namespace ilp
