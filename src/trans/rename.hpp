// Register renaming (paper Section 2, "Register Renaming").
//
// "Register renaming assigns unique registers to different definitions of the
// same register.  A common use ... is to rename registers within individual
// loop bodies of an unrolled loop."
//
// Within each simple-loop body, every register with multiple definitions is
// split: uses before the first definition keep the original name (the
// loop-carried or preheader value), each definition d_i gets a fresh name
// used until d_{i+1}, and the *last* definition writes the original register
// again when its value is needed around the back edge or at the fall-through
// exit (Figure 1d: r11i -> r12i -> r13i -> r11i).  A register that is live-in
// at a side-exit target is skipped: an early exit must observe the partially
// updated original name.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Renames within every simple loop body; returns number of registers split.
int rename_registers(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
int rename_registers(Function& fn);

}  // namespace ilp
