#include "trans/searchexpand.hpp"

#include <optional>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"
#include "trans/expand_common.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::searchexpand across compiles.
struct SearchExpandState {
  DenseMap<int> defs;  // RegKey -> #defs in the body
  std::vector<Reg> def_order;
};

bool is_search_op(Opcode op) {
  return op == Opcode::FMAX || op == Opcode::FMIN || op == Opcode::IMAX ||
         op == Opcode::IMIN;
}

struct Candidate {
  Reg v;
  Opcode op = Opcode::NOP;
  std::vector<std::size_t> def_idx;
};

std::optional<Candidate> find_candidate(const Function& fn, const SimpleLoop& loop,
                                        SearchExpandState& st) {
  const Block& body = fn.block(loop.body);
  // First-def program order keeps the candidate choice (and the fresh
  // registers expand() allocates for it) deterministic.
  st.defs.clear();
  st.def_order.clear();
  for (const Instruction& in : body.insts)
    if (in.has_dest() && ++st.defs[RegKey::key(in.dst)] == 1)
      st.def_order.push_back(in.dst);

  for (const Reg& v : st.def_order) {
    if (st.defs.get_or(RegKey::key(v), 0) < 2) continue;
    Candidate cand;
    cand.v = v;
    bool ok = true;
    for (std::size_t i = 0; i < body.insts.size() && ok; ++i) {
      const Instruction& in = body.insts[i];
      if (in.writes(v)) {
        // V = max(V, x) or V = max(x, V), uniformly max or uniformly min.
        if (!is_search_op(in.op) || (cand.op != Opcode::NOP && in.op != cand.op)) {
          ok = false;
          break;
        }
        const bool self = in.src1 == v || (!in.src2_is_imm && in.src2 == v);
        if (!self) {
          ok = false;
          break;
        }
        cand.op = in.op;
        cand.def_idx.push_back(i);
      } else if (in.reads(v)) {
        ok = false;  // the search value is only referenced by its updates
      }
    }
    if (ok && cand.def_idx.size() >= 2) return cand;
  }
  return std::nullopt;
}

void expand(Function& fn, const SimpleLoop& loop, const Candidate& cand) {
  const Reg v = cand.v;
  const bool fp = v.cls == RegClass::Fp;
  const std::size_t k = cand.def_idx.size();

  // Temporaries, all initialized to V (identity for a running max/min).
  std::vector<Reg> temps;
  std::vector<Instruction> init;
  for (std::size_t i = 0; i < k; ++i) {
    const Reg t = fn.new_reg(v.cls);
    temps.push_back(t);
    init.push_back(make_unary(fp ? Opcode::FMOV : Opcode::IMOV, t, v));
  }
  append_to_preheader(fn, loop, init);

  for (std::size_t i = 0; i < k; ++i) {
    Instruction& in = fn.block(loop.body).insts[cand.def_idx[i]];
    in.replace_uses(v, temps[i]);
    in.dst = temps[i];
  }

  // Every exit recovers V = fold(op, temps); correct on partial iterations
  // too, since untouched temporaries still hold a previous running value.
  const std::vector<Instruction> fix = make_fold(cand.op, v, temps);
  splice_fallthrough_fixup(fn, loop, fix);
  for (std::size_t se : loop.side_exits) splice_side_exit_fixup(fn, loop, se, fix);
}

}  // namespace

int search_expansion(Function& fn, CompileContext& ctx) {
  SearchExpandState& st = ctx.searchexpand.get<SearchExpandState>();
  int n = 0;
  while (true) {
    const Cfg cfg(fn, &ctx);
    const Dominators dom(cfg);
    bool did = false;
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
      if (const auto cand = find_candidate(fn, loop, st)) {
        expand(fn, loop, *cand);
        ++n;
        did = true;
        break;
      }
    }
    if (!did) break;
  }
  if (n > 0) fn.renumber();
  return n;
}

int search_expansion(Function& fn) {
  return search_expansion(fn, CompileContext::local());
}

}  // namespace ilp
