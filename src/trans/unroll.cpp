#include "trans/unroll.hpp"

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/builder.hpp"
#include "analysis/tripcount.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

// Emits, into the preheader, runtime computation of the preconditioning bound
// pre_bound = iv + (((T-1) mod N) + 1) * step, where T is the trip count.
// Returns the register holding pre_bound.
Reg emit_precondition_bound(Function& fn, BlockId pre_id, const CountedLoopInfo& info,
                            int n) {
  const Reg t = emit_trip_count(fn, pre_id, info);
  std::vector<Instruction> code;
  // rem = ((T-1) mod N) + 1
  const Reg rem = fn.new_int_reg();
  code.push_back(make_binary_imm(Opcode::ISUB, rem, t, 1));
  code.push_back(make_binary_imm(Opcode::IREM, rem, rem, n));
  code.push_back(make_binary_imm(Opcode::IADD, rem, rem, 1));
  // pre_bound = iv + rem * step
  const Reg pb = fn.new_int_reg();
  code.push_back(make_binary_imm(Opcode::IMUL, pb, rem, info.step));
  code.push_back(make_binary(Opcode::IADD, pb, pb, info.iv));

  Block& pre = fn.block(pre_id);
  const std::size_t pos = pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
  pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), code.begin(),
                   code.end());
  return pb;
}

bool unroll_counted(Function& fn, const SimpleLoop& loop, const CountedLoopInfo& info,
                    int n, bool allow_merge) {
  const BlockId exit_id = fn.layout_next(loop.body);
  ILP_ASSERT(exit_id != kNoBlock, "loop body must fall through to an exit");

  const Reg pre_bound = emit_precondition_bound(fn, loop.preheader, info, n);

  // Create GUARD and MAIN after the (preconditioning) body.
  const BlockId guard_id = fn.insert_block_after(loop.body, fn.block(loop.body).name + ".g");
  const BlockId main_id = fn.insert_block_after(guard_id, fn.block(loop.body).name + ".u");

  // Snapshot the body before rewriting its back edge.
  const std::vector<Instruction> body_copy = fn.block(loop.body).insts;

  // PRE: retarget the back edge at pre_bound with a direction-exact compare.
  {
    Block& body = fn.block(loop.body);
    Instruction& br = body.insts[loop.back_branch];
    br.op = info.step > 0 ? Opcode::BLT : Opcode::BGT;
    br.src1 = info.iv;
    br.src2 = pre_bound;
    br.src2_is_imm = false;
  }

  // GUARD: skip MAIN when the remaining count is zero (exit condition holds).
  {
    Block& guard = fn.block(guard_id);
    Instruction g = body_copy[loop.back_branch];  // original compare
    g.op = op_invert_branch(g.op);
    g.target = exit_id;
    guard.insts.push_back(g);
  }

  // Decide whether the counted IV's per-copy updates can merge into a single
  // "iv += N*step" before the back edge (the paper's Figure 5c shows the
  // unrolled counter as one "r1 = r1 + 3").  Legal when every use of the IV
  // is the update itself, the back-edge compare, or a memory base /
  // immediate add-sub whose constant can absorb the copy offset — and the IV
  // is not observed at a side exit (an early exit must see the partially
  // advanced value).
  bool merge_updates = allow_merge;
  if (merge_updates) {
    const Cfg cfg2(fn);
    const Liveness live(cfg2);
    for (std::size_t se : loop.side_exits) {
      const Instruction& br = body_copy[se];
      if (live.live_in(br.target).test(RegKey::key(info.iv))) merge_updates = false;
    }
    for (std::size_t i = 0; i < body_copy.size() && merge_updates; ++i) {
      if (i == info.update_idx || i == loop.back_branch) continue;
      const Instruction& in = body_copy[i];
      if (!in.reads(info.iv)) continue;
      const bool foldable_mem = in.is_memory() && in.src1 == info.iv &&
                                !(in.src2.valid() && in.src2 == info.iv);
      const bool foldable_addsub = (in.op == Opcode::IADD || in.op == Opcode::ISUB) &&
                                   in.src2_is_imm && in.src1 == info.iv;
      const bool foldable_branch =
          in.is_branch() && in.src2_is_imm && in.src1 == info.iv;
      if (!foldable_mem && !foldable_addsub && !foldable_branch) merge_updates = false;
    }
  }

  // MAIN: N copies; inner back edges removed, last one kept (original form,
  // retargeted at MAIN itself).  With merged updates, copy c reads the
  // pre-update IV with its offsets adjusted by c*step, and one update
  // "iv += N*step" is emitted before the branch.
  {
    Block& main = fn.block(main_id);
    for (int copy = 0; copy < n; ++copy) {
      for (std::size_t i = 0; i < body_copy.size(); ++i) {
        // Folded offset = steps the read expects minus steps already applied
        // to the register at that point.  A read in copy c expects
        // c (+1 when it follows the original update position) steps; the
        // register has advanced only once the merged update (emitted at the
        // last copy's update position) has executed.
        // The merged update is deferred to just before the back edge, so no
        // read ever sees a partially advanced register: every read in copy c
        // folds (c + 1-if-after-the-original-update) steps.
        const std::int64_t offset =
            merge_updates ? (copy + (i > info.update_idx ? 1 : 0)) * info.step : 0;
        if (i == info.update_idx && merge_updates) continue;
        if (i == loop.back_branch) {
          if (copy == n - 1) {
            if (merge_updates) {
              Instruction upd = body_copy[info.update_idx];  // iv = iv +/- C
              upd.ival = upd.ival * n;
              main.insts.push_back(upd);
            }
            Instruction br = body_copy[i];
            br.target = main_id;
            main.insts.push_back(br);
          }
          continue;
        }
        Instruction in = body_copy[i];
        if (offset != 0 && in.reads(info.iv)) {
          if (in.is_memory() && in.src1 == info.iv) {
            in.ival += offset;
          } else if ((in.op == Opcode::IADD || in.op == Opcode::ISUB) && in.src2_is_imm &&
                     in.src1 == info.iv) {
            in.ival += in.op == Opcode::IADD ? offset : -offset;
          } else if (in.is_branch() && in.src2_is_imm && in.src1 == info.iv) {
            in.ival -= offset;
          }
        }
        main.insts.push_back(in);
      }
    }
  }
  return true;
}

bool unroll_uncounted(Function& fn, const SimpleLoop& loop, int n) {
  const BlockId exit_id = fn.layout_next(loop.body);
  ILP_ASSERT(exit_id != kNoBlock, "loop body must fall through to an exit");
  Block& body = fn.block(loop.body);
  const std::vector<Instruction> body_copy = body.insts;

  std::vector<Instruction> out;
  out.reserve(body_copy.size() * static_cast<std::size_t>(n));
  for (int copy = 0; copy < n; ++copy) {
    for (std::size_t i = 0; i < body_copy.size(); ++i) {
      if (i == loop.back_branch && copy != n - 1) {
        // Intermediate back edge becomes an inverted side exit.
        Instruction br = body_copy[i];
        br.op = op_invert_branch(br.op);
        br.target = exit_id;
        out.push_back(br);
        continue;
      }
      out.push_back(body_copy[i]);
    }
  }
  body.insts = std::move(out);
  return true;
}

}  // namespace

int unroll_loops(Function& fn, const UnrollOptions& opts) {
  if (opts.max_factor < 2) return 0;
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);

  int unrolled = 0;
  for (const SimpleLoop& loop : loops) {
    const std::size_t body_size = fn.block(loop.body).insts.size();
    const int by_size = static_cast<int>(opts.max_body_insts / std::max<std::size_t>(1, body_size));
    const int n = std::min(opts.max_factor, by_size);
    if (n < 2) continue;

    if (const auto counted = match_counted_loop(fn, loop)) {
      if (unroll_counted(fn, loop, *counted, n, opts.merge_counter_updates)) ++unrolled;
    } else {
      if (unroll_uncounted(fn, loop, n)) ++unrolled;
    }
  }
  fn.renumber();
  return unrolled;
}

}  // namespace ilp
