#include "trans/indexpand.hpp"

#include <optional>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"
#include "trans/expand_common.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::indexpand across compiles.
struct IndExpandState {
  DenseMap<int> defs;  // RegKey -> #defs in the body
  std::vector<Reg> def_order;
};

// The uniform per-iteration step: either an immediate delta or +/- an
// invariant register.
struct Step {
  bool is_imm = true;
  std::int64_t imm = 0;  // signed delta when is_imm
  Reg reg;               // step register otherwise
  bool negate = false;   // V = V - reg
};

struct Candidate {
  Reg v;
  Step step;
  std::vector<std::size_t> def_idx;
};

std::optional<Step> classify_def(const Instruction& in, const Reg& v,
                                 const DenseMap<int>& defs) {
  if (in.op != Opcode::IADD && in.op != Opcode::ISUB) return std::nullopt;
  if (!in.dst.is_int()) return std::nullopt;
  Step s;
  if (in.src2_is_imm) {
    if (in.src1 != v) return std::nullopt;
    s.is_imm = true;
    s.imm = in.op == Opcode::IADD ? in.ival : -in.ival;
    if (s.imm == 0) return std::nullopt;
    return s;
  }
  // Register step; must be loop-invariant.
  Reg m;
  if (in.src1 == v)
    m = in.src2;
  else if (in.op == Opcode::IADD && in.src2 == v)
    m = in.src1;  // V = m + V
  else
    return std::nullopt;
  if (m == v) return std::nullopt;  // V = V + V is not an induction step
  if (defs.contains(RegKey::key(m))) return std::nullopt;
  s.is_imm = false;
  s.reg = m;
  s.negate = in.op == Opcode::ISUB;
  return s;
}

bool same_step(const Step& a, const Step& b) {
  if (a.is_imm != b.is_imm) return false;
  if (a.is_imm) return a.imm == b.imm;
  return a.reg == b.reg && a.negate == b.negate;
}

// Finds one expandable induction variable in `loop`, or nullopt.
std::optional<Candidate> find_candidate(const Function& fn, const SimpleLoop& loop,
                                        IndExpandState& st) {
  const Block& body = fn.block(loop.body);
  // First-def program order keeps the candidate choice (and the fresh
  // registers expand() allocates for it) deterministic.
  st.defs.clear();
  st.def_order.clear();
  for (const Instruction& in : body.insts)
    if (in.has_dest() && ++st.defs[RegKey::key(in.dst)] == 1)
      st.def_order.push_back(in.dst);

  for (const Reg& v : st.def_order) {
    if (st.defs.get_or(RegKey::key(v), 0) < 2 || !v.is_int()) continue;
    Candidate cand;
    cand.v = v;
    bool ok = true;
    bool first = true;
    int other_uses = 0;
    for (std::size_t i = 0; i < body.insts.size() && ok; ++i) {
      const Instruction& in = body.insts[i];
      if (in.writes(v)) {
        const auto s = classify_def(in, v, st.defs);
        if (!s || (!first && !same_step(cand.step, *s))) {
          ok = false;
          break;
        }
        cand.step = *s;
        first = false;
        cand.def_idx.push_back(i);
      } else if (in.reads(v)) {
        ++other_uses;
      }
    }
    // The back-branch's second operand testing V is not supported (the
    // post-bump rewrite only adjusts a src1 test).
    const Instruction& back = body.insts[loop.back_branch];
    if (!back.src2_is_imm && back.src2 == v) ok = false;
    // Distinguishing condition from accumulators: the value is used by at
    // least one other instruction (paper Section 2).
    if (ok && !first && other_uses > 0) return cand;
  }
  return std::nullopt;
}

void expand(Function& fn, const SimpleLoop& loop, const Candidate& cand) {
  const Reg v = cand.v;
  const Step& st = cand.step;
  const std::size_t k = cand.def_idx.size();

  // Temporaries p_0..p_k and preheader initialization p_i = V + i*m.
  std::vector<Reg> p(k + 1);
  std::vector<Instruction> init;
  for (std::size_t i = 0; i <= k; ++i) {
    p[i] = fn.new_int_reg();
    if (i == 0) {
      init.push_back(make_unary(Opcode::IMOV, p[0], v));
    } else if (st.is_imm) {
      init.push_back(make_binary_imm(Opcode::IADD, p[i], p[i - 1], st.imm));
    } else {
      init.push_back(make_binary(st.negate ? Opcode::ISUB : Opcode::IADD, p[i], p[i - 1],
                                 st.reg));
    }
  }
  // z = k * m for register steps.
  Reg z;
  if (!st.is_imm) {
    z = fn.new_int_reg();
    init.push_back(make_binary_imm(Opcode::IMUL, z, st.reg, static_cast<std::int64_t>(k)));
  }
  append_to_preheader(fn, loop, init);

  // Side-exit stubs first (indices are still the original ones): after i
  // updates the original V equals p_i's (un-bumped) value.
  for (std::size_t se : loop.side_exits) {
    std::size_t crossed = 0;
    for (std::size_t d : cand.def_idx)
      if (d < se) ++crossed;
    const std::vector<Instruction> fix{make_unary(Opcode::IMOV, v, p[crossed])};
    splice_side_exit_fixup(fn, loop, se, fix);
  }

  // Rewrite the body: drop the updates, substitute versioned reads, bump all
  // temporaries before the back edge, and retarget a V-testing back branch.
  {
    Block& body = fn.block(loop.body);
    std::vector<Instruction> out;
    out.reserve(body.insts.size() + k + 1);
    std::size_t version = 0;
    std::size_t def_cursor = 0;
    const std::size_t back = loop.back_branch;
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      Instruction in = body.insts[i];
      if (def_cursor < k && i == cand.def_idx[def_cursor]) {
        ++def_cursor;
        ++version;
        continue;  // update removed
      }
      if (i == back) {
        // Emit the bumps, then the branch.
        const std::int64_t zi = st.imm * static_cast<std::int64_t>(k);
        for (std::size_t j = 0; j <= k; ++j) {
          if (st.is_imm)
            out.push_back(make_binary_imm(zi >= 0 ? Opcode::IADD : Opcode::ISUB, p[j],
                                          p[j], zi >= 0 ? zi : -zi));
          else
            out.push_back(make_binary(st.negate ? Opcode::ISUB : Opcode::IADD, p[j],
                                      p[j], z));
        }
        if (in.src1 == v) {
          // The branch tested V: compare the (bumped) p_k against bound+z.
          in.src1 = p[k];
          if (st.is_imm && in.src2_is_imm) {
            in.ival += zi;
          } else {
            // bound' = bound + k*m, computed in the preheader.
            const Reg bound = fn.new_int_reg();
            std::vector<Instruction> pre;
            if (in.src2_is_imm) {
              pre.push_back(make_ldi(bound, in.ival));
            } else {
              pre.push_back(make_unary(Opcode::IMOV, bound, in.src2));
            }
            if (st.is_imm) {
              pre.push_back(make_binary_imm(Opcode::IADD, bound, bound, zi));
            } else {
              pre.push_back(make_binary(st.negate ? Opcode::ISUB : Opcode::IADD, bound,
                                        bound, z));
            }
            append_to_preheader(fn, loop, pre);
            in.src2 = bound;
            in.src2_is_imm = false;
          }
        } else {
          in.replace_uses(v, p[version]);
        }
        out.push_back(in);
        continue;
      }
      in.replace_uses(v, p[version]);
      out.push_back(in);
    }
    fn.block(loop.body).insts = std::move(out);
  }

  // Fall-through exit: V = p_0 (post-bump p_0 equals V's exit value).
  const std::vector<Instruction> fix{make_unary(Opcode::IMOV, v, p[0])};
  splice_fallthrough_fixup(fn, loop, fix);
}

}  // namespace

int induction_expansion(Function& fn, CompileContext& ctx) {
  IndExpandState& st = ctx.indexpand.get<IndExpandState>();
  int n = 0;
  // Expanding changes instruction indices, so re-derive loops per expansion.
  while (true) {
    const Cfg cfg(fn, &ctx);
    const Dominators dom(cfg);
    bool did = false;
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
      if (const auto cand = find_candidate(fn, loop, st)) {
        expand(fn, loop, *cand);
        ++n;
        did = true;
        break;
      }
    }
    if (!did) break;
  }
  if (n > 0) fn.renumber();
  return n;
}

int induction_expansion(Function& fn) {
  return induction_expansion(fn, CompileContext::local());
}

}  // namespace ilp
