// Strength reduction (paper Section 2, "Strength Reduction").
//
// Replaces long-latency integer multiply/divide/remainder by a compile-time
// constant with shorter shift/add sequences.  On a superscalar the generated
// instructions are mostly independent, so the profitability bar is the
// *dependence height* of the replacement versus the original latency
// (IntMul = 3, IntDiv = 10):
//
//   * multiply by 2^k                  -> 1 shift                 (height 1)
//   * multiply by +/-(2^a +/- 2^b)     -> 2 shifts + add/sub(+neg)(height 2)
//   * divide by 2^k (signed, exact
//     round-toward-zero)               -> shra/and/add/shra       (height 4)
//   * remainder by 2^k                 -> div sequence + shl + sub(height 6)
//   * divide by other constants        -> magic-number multiply
//     (Granlund–Montgomery)            -> mul + shifts + adds     (height ~6)
//
// The magic-number path is the paper's "more opportunities ... for
// superscalar and VLIW processors" observation taken to its standard
// modern form; it can be disabled to match a minimal 1992 implementation.
#pragma once

#include "ir/function.hpp"

namespace ilp {

struct StrengthRedOptions {
  bool reduce_mul = true;
  bool reduce_div_pow2 = true;
  bool reduce_rem_pow2 = true;
  bool reduce_div_magic = true;
};

// Returns the number of instructions reduced.
int strength_reduction(Function& fn, const StrengthRedOptions& opts = {});

}  // namespace ilp
