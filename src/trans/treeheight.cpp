#include "trans/treeheight.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "ir/reg.hpp"
#include "support/assert.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

enum class Family { FpAdd, FpMul, IntAdd, IntMul };

std::optional<Family> family_of(Opcode op) {
  switch (op) {
    case Opcode::FADD:
    case Opcode::FSUB:
      return Family::FpAdd;
    case Opcode::FMUL:
    case Opcode::FDIV:
      return Family::FpMul;
    case Opcode::IADD:
    case Opcode::ISUB:
      return Family::IntAdd;
    case Opcode::IMUL:
      return Family::IntMul;
    default:
      return std::nullopt;
  }
}

bool family_is_fp(Family f) { return f == Family::FpAdd || f == Family::FpMul; }
bool family_is_mul(Family f) { return f == Family::FpMul || f == Family::IntMul; }

// A leaf or partially combined node during the rebuild.
struct Node {
  bool is_imm = false;
  Reg reg;
  double fimm = 0.0;
  std::int64_t iimm = 0;
  int depth = 0;
  // True when the leaf register is produced inside this block (its value is
  // ready later than pure inputs; pairing prefers pure inputs for divides).
  bool def_in_block = false;
};

struct Leaf {
  Node node;
  bool inverted = false;  // negative sign / reciprocal
};

// Reusable scratch; lives in CompileContext::treeheight across compiles.
struct TreeHeightState {
  DenseMap<int> use_count;       // RegKey -> #uses in the function
  DenseMap<int> def_count;       // RegKey -> #defs in the function
  DenseMap<std::size_t> def_at;  // RegKey -> defining index in current block
  DenseSet leaf_regs;            // RegKey membership during stability check
  DenseSet member_set;           // instruction-index membership
};

class TreePass {
 public:
  TreePass(Function& fn, const TreeHeightOptions& opts, TreeHeightState& st)
      : fn_(fn), opts_(opts), st_(st) {
    st_.use_count.clear();
    st_.def_count.clear();
    for (const Block& b : fn.blocks())
      for (const Instruction& in : b.insts) {
        if (in.src1.valid()) ++st_.use_count[RegKey::key(in.src1)];
        if (in.src2.valid() && !in.src2_is_imm) ++st_.use_count[RegKey::key(in.src2)];
        if (in.has_dest()) ++st_.def_count[RegKey::key(in.dst)];
      }
    for (const Reg& r : fn.live_out()) ++st_.use_count[RegKey::key(r)];
  }

  int run() {
    int n = 0;
    for (Block& b : fn_.blocks()) n += run_block(b);
    if (n > 0) fn_.renumber();
    return n;
  }

 private:
  // A register is absorbable into a tree when its defining instruction can be
  // deleted after the rebuild: single def, single use, defined in this block.
  [[nodiscard]] bool absorbable(const Reg& r) const {
    return st_.def_count.get_or(RegKey::key(r), 0) == 1 &&
           st_.use_count.get_or(RegKey::key(r), 0) == 1;
  }

  int run_block(Block& b) {
    // Map register -> defining index inside this block.
    DenseMap<std::size_t>& def_at = st_.def_at;
    def_at.clear();
    for (std::size_t i = 0; i < b.insts.size(); ++i)
      if (b.insts[i].has_dest()) def_at[RegKey::key(b.insts[i].dst)] = i;

    int rebuilt = 0;
    // Scan for roots from the top so inner (other-family) subtrees are
    // rebalanced before the outer trees that consume them.
    for (std::size_t root = 0; root < b.insts.size(); ++root) {
      const Instruction& rin = b.insts[root];
      const auto fam = family_of(rin.op);
      if (!fam) continue;
      // A root's dest must not itself be absorbed into a same-family parent
      // (that parent will collect this node anyway).
      if (absorbable(rin.dst)) {
        const auto uit = find_single_use(b, rin.dst, root);
        if (uit && family_of(b.insts[*uit].op) == fam) continue;
      }

      // Collect leaves.
      std::vector<Leaf> leaves;
      std::vector<std::size_t> members;
      if (!collect(b, def_at, root, *fam, false, leaves, members)) continue;
      if (leaves.size() < 3) continue;

      // Leaf registers must be stable between the earliest member and root.
      const std::size_t first = *std::min_element(members.begin(), members.end());
      st_.leaf_regs.clear();
      for (const Leaf& l : leaves)
        if (!l.node.is_imm) st_.leaf_regs.insert(RegKey::key(l.node.reg));
      st_.member_set.clear();
      for (std::size_t m : members) st_.member_set.insert(m);
      bool stable = true;
      for (std::size_t i = first; i < root && stable; ++i) {
        if (st_.member_set.contains(i)) continue;
        const Instruction& x = b.insts[i];
        if (x.has_dest() && st_.leaf_regs.contains(RegKey::key(x.dst))) stable = false;
      }
      if (!stable) continue;

      // Rebuild a balanced tree at the root position.
      std::vector<Instruction> seq = rebuild(*fam, rin.dst, leaves);
      if (seq.empty()) continue;
      // Replace the root instruction with the sequence; the absorbed chain
      // instructions become dead (cleaned up by DCE).
      b.insts.erase(b.insts.begin() + static_cast<std::ptrdiff_t>(root));
      b.insts.insert(b.insts.begin() + static_cast<std::ptrdiff_t>(root), seq.begin(),
                     seq.end());
      // Maintain bookkeeping for subsequent roots in this block.
      def_at.clear();
      for (std::size_t i = 0; i < b.insts.size(); ++i)
        if (b.insts[i].has_dest()) def_at[RegKey::key(b.insts[i].dst)] = i;
      root += seq.size() - 1;
      ++rebuilt;
    }
    return rebuilt;
  }

  std::optional<std::size_t> find_single_use(const Block& b, const Reg& r,
                                             std::size_t after) const {
    for (std::size_t i = after + 1; i < b.insts.size(); ++i)
      if (b.insts[i].reads(r)) return i;
    return std::nullopt;
  }

  // Recursively flattens the operand tree of instruction `idx`.
  bool collect(const Block& b, const DenseMap<std::size_t>& def_at,
               std::size_t idx, Family fam, bool inverted, std::vector<Leaf>& leaves,
               std::vector<std::size_t>& members) {
    if (members.size() > 64) return false;  // runaway guard
    const Instruction& in = b.insts[idx];
    members.push_back(idx);
    const bool second_inverts = in.op == Opcode::FSUB || in.op == Opcode::ISUB ||
                                in.op == Opcode::FDIV;
    // src1
    if (!descend(b, def_at, in.src1, idx, fam, inverted, leaves, members)) return false;
    // src2 (register or immediate)
    if (in.src2_is_imm) {
      Leaf l;
      l.node.is_imm = true;
      l.node.fimm = in.fval;
      l.node.iimm = in.ival;
      l.inverted = inverted ^ second_inverts;
      leaves.push_back(l);
    } else {
      if (!descend(b, def_at, in.src2, idx, fam, inverted ^ second_inverts, leaves,
                   members))
        return false;
    }
    return true;
  }

  bool descend(const Block& b, const DenseMap<std::size_t>& def_at,
               const Reg& r, std::size_t user_idx, Family fam, bool inverted,
               std::vector<Leaf>& leaves, std::vector<std::size_t>& members) {
    const std::size_t* it = def_at.find(RegKey::key(r));
    if (it != nullptr && *it < user_idx && absorbable(r) &&
        family_of(b.insts[*it].op) == fam) {
      return collect(b, def_at, *it, fam, inverted, leaves, members);
    }
    Leaf l;
    l.node.reg = r;
    // Constant materializations count as pure inputs: their values are ready
    // immediately, unlike interior arithmetic results.
    if (it != nullptr) {
      const Opcode dop = b.insts[*it].op;
      l.node.def_in_block = dop != Opcode::LDI && dop != Opcode::FLDI;
      // Latency-weighted mode: a leaf computed in this block is ready no
      // earlier than its producer's latency; weight it so slow producers
      // (divides, loads) join the balanced tree late.
      if (opts_.latency_weighted && l.node.def_in_block)
        l.node.depth = opts_.machine.latency(dop);
    }
    l.inverted = inverted;
    leaves.push_back(l);
    return true;
  }

  // ---- Balanced rebuild -----------------------------------------------------

  Node combine(Family fam, Opcode op, const Node& a, const Node& c,
               std::vector<Instruction>& seq) {
    const bool fp = family_is_fp(fam);
    Node out;
    // Balanced assuming equal latencies (the paper's Baer–Bovet variant),
    // except that divides count as several levels so they start early and
    // finish off the critical path (reproduces Figure 7's 13-cycle result).
    // The latency-weighted mode (paper future work) uses the machine's
    // actual latencies as weights instead.
    if (opts_.latency_weighted)
      out.depth = std::max(a.depth, c.depth) + opts_.machine.latency(op);
    else
      out.depth = std::max(a.depth, c.depth) + (op == Opcode::FDIV ? 4 : 1);
    const Reg dst = fn_.new_reg(fp ? RegClass::Fp : RegClass::Int);
    out.reg = dst;
    ILP_ASSERT(!(a.is_imm && c.is_imm), "constant pairs folded before combine");
    if (c.is_imm) {
      seq.push_back(fp ? make_binary_fimm(op, dst, a.reg, c.fimm)
                       : make_binary_imm(op, dst, a.reg, c.iimm));
    } else if (a.is_imm) {
      if (op_is_commutative(op)) {
        seq.push_back(fp ? make_binary_fimm(op, dst, c.reg, a.fimm)
                         : make_binary_imm(op, dst, c.reg, a.iimm));
      } else {
        // imm - x / imm / x: materialize the constant.
        const Reg k = fn_.new_reg(fp ? RegClass::Fp : RegClass::Int);
        seq.push_back(fp ? make_fldi(k, a.fimm) : make_ldi(k, a.iimm));
        seq.push_back(make_binary(op, dst, k, c.reg));
      }
    } else {
      seq.push_back(make_binary(op, dst, a.reg, c.reg));
    }
    return out;
  }

  // Combines nodes pairwise, shallowest first, with `op`.
  Node balanced_fold(Family fam, Opcode op, std::vector<Node> nodes,
                     std::vector<Instruction>& seq) {
    ILP_ASSERT(!nodes.empty(), "balanced_fold needs nodes");
    while (nodes.size() > 1) {
      std::sort(nodes.begin(), nodes.end(),
                [](const Node& a, const Node& c) { return a.depth < c.depth; });
      const Node a = nodes[0];
      const Node c = nodes[1];
      nodes.erase(nodes.begin(), nodes.begin() + 2);
      nodes.push_back(combine(fam, op, a, c, seq));
    }
    return nodes[0];
  }

  std::vector<Instruction> rebuild(Family fam, Reg dst, const std::vector<Leaf>& leaves) {
    const bool fp = family_is_fp(fam);
    const bool mul = family_is_mul(fam);
    const Opcode join = mul ? (fp ? Opcode::FMUL : Opcode::IMUL)
                            : (fp ? Opcode::FADD : Opcode::IADD);
    const Opcode anti = mul ? Opcode::FDIV : (fp ? Opcode::FSUB : Opcode::ISUB);

    // Fold constants: signed sum (additive) or product/quotient (mult).
    std::vector<Node> plain;
    std::vector<Node> inv;
    double fconst = mul ? 1.0 : 0.0;
    std::int64_t iconst = mul ? 1 : 0;
    bool have_const = false;
    for (const Leaf& l : leaves) {
      if (l.node.is_imm) {
        have_const = true;
        if (fp) {
          if (mul)
            fconst = l.inverted ? fconst / l.node.fimm : fconst * l.node.fimm;
          else
            fconst = l.inverted ? fconst - l.node.fimm : fconst + l.node.fimm;
        } else {
          if (mul)
            iconst *= l.node.iimm;  // int family has no inverted mul leaves
          else
            iconst = l.inverted ? iconst - l.node.iimm : iconst + l.node.iimm;
        }
        continue;
      }
      (l.inverted ? inv : plain).push_back(l.node);
    }
    if (have_const && fp && !std::isfinite(fconst)) return {};
    if (have_const) {
      // Drop identity constants; otherwise append as a plain leaf.
      const bool identity = fp ? (fconst == (mul ? 1.0 : 0.0)) : (iconst == (mul ? 1 : 0));
      if (!identity) {
        Node c;
        c.is_imm = true;
        c.fimm = fconst;
        c.iimm = iconst;
        plain.push_back(c);
      }
    }

    std::vector<Instruction> seq;
    // Pair inverted leaves with plain leaves first (sub/div starts early);
    // prefer plain leaves that are pure inputs so the long-latency divide's
    // operand is ready immediately (Figure 7 pairs F/G, not (C+D)/G).
    std::stable_partition(plain.begin(), plain.end(),
                          [](const Node& n) { return !n.def_in_block && !n.is_imm; });
    std::vector<Node> nodes;
    std::size_t pi = 0;
    std::size_t ii = 0;
    while (pi < plain.size() && ii < inv.size())
      nodes.push_back(combine(fam, anti, plain[pi++], inv[ii++], seq));
    for (; pi < plain.size(); ++pi) nodes.push_back(plain[pi]);

    std::optional<Node> leftover_inv;
    if (ii < inv.size()) {
      std::vector<Node> rest(inv.begin() + static_cast<std::ptrdiff_t>(ii), inv.end());
      leftover_inv = balanced_fold(fam, join, std::move(rest), seq);
    }

    Node result;
    if (nodes.empty()) {
      ILP_ASSERT(leftover_inv.has_value(), "tree with no leaves");
      // Pure inverted result: 0 - x or 1 / x.
      Node zero;
      zero.is_imm = true;
      zero.fimm = mul ? 1.0 : 0.0;
      zero.iimm = mul ? 1 : 0;
      result = combine(fam, anti, zero, *leftover_inv, seq);
    } else {
      result = balanced_fold(fam, join, std::move(nodes), seq);
      if (leftover_inv) result = combine(fam, anti, result, *leftover_inv, seq);
    }

    // Route the final value into the root's destination.
    if (result.is_imm) return {};  // fully constant: leave to constprop
    if (!seq.empty() && seq.back().dst == result.reg) {
      seq.back().dst = dst;
    } else {
      seq.push_back(make_unary(fp ? Opcode::FMOV : Opcode::IMOV, dst, result.reg));
    }
    return seq;
  }

  Function& fn_;
  TreeHeightOptions opts_;
  TreeHeightState& st_;
};

}  // namespace

int tree_height_reduction(Function& fn, const TreeHeightOptions& opts,
                          CompileContext& ctx) {
  return TreePass(fn, opts, ctx.treeheight.get<TreeHeightState>()).run();
}

int tree_height_reduction(Function& fn, const TreeHeightOptions& opts) {
  return tree_height_reduction(fn, opts, CompileContext::local());
}

}  // namespace ilp
