#include "analysis/liveness.hpp"

namespace ilp {

Liveness::Liveness(const Cfg& cfg) : fn_(&cfg.function()), cfg_(&cfg) {
  const std::uint32_t maxid =
      std::max(fn_->num_regs(RegClass::Int), fn_->num_regs(RegClass::Fp));
  nkeys_ = 2 * static_cast<std::size_t>(maxid) + 2;

  ret_live_ = BitVector(nkeys_);
  for (const Reg& r : fn_->live_out()) ret_live_.set(RegKey::key(r));

  const std::size_t n = fn_->num_blocks();
  live_in_.assign(n, BitVector(nkeys_));

  // Backward iterative fixpoint; visit blocks in reverse layout order (a good
  // approximation of reverse topological order for loop bodies).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = fn_->blocks().rbegin(); it != fn_->blocks().rend(); ++it) {
      const Block& b = *it;
      BitVector live = exit_live(b.id);
      for (auto ii = b.insts.rbegin(); ii != b.insts.rend(); ++ii) transfer(*ii, live);
      if (!(live == live_in_[fn_->layout_index(b.id)])) {
        live_in_[fn_->layout_index(b.id)] = std::move(live);
        changed = true;
      }
    }
  }
}

void Liveness::transfer(const Instruction& in, BitVector& live) const {
  if (in.op == Opcode::RET) {
    live = ret_live_;
    return;
  }
  if (in.op == Opcode::JUMP) {
    live = live_in_[fn_->layout_index(in.target)];
    return;
  }
  if (in.is_branch()) live |= live_in_[fn_->layout_index(in.target)];
  if (in.has_dest()) live.reset(RegKey::key(in.dst));
  if (in.src1.valid()) live.set(RegKey::key(in.src1));
  if (in.src2.valid() && !in.src2_is_imm) live.set(RegKey::key(in.src2));
}

BitVector Liveness::exit_live(BlockId b) const {
  const Block& blk = fn_->block(b);
  if (blk.has_terminator()) return BitVector(nkeys_);
  const BlockId next = fn_->layout_next(b);
  if (next == kNoBlock) return BitVector(nkeys_);
  return live_in_[fn_->layout_index(next)];
}

BitVector Liveness::live_after(BlockId b, std::size_t idx) const {
  const Block& blk = fn_->block(b);
  BitVector live = exit_live(b);
  for (std::size_t i = blk.insts.size(); i-- > idx + 1;) transfer(blk.insts[i], live);
  return live;
}

std::vector<BitVector> Liveness::live_after_all(BlockId b) const {
  const Block& blk = fn_->block(b);
  std::vector<BitVector> out(blk.insts.size(), BitVector(nkeys_));
  BitVector live = exit_live(b);
  for (std::size_t i = blk.insts.size(); i-- > 0;) {
    out[i] = live;
    transfer(blk.insts[i], live);
  }
  return out;
}

}  // namespace ilp
