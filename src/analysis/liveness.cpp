#include "analysis/liveness.hpp"

namespace ilp {

namespace {

// Re-shapes `bv` to nbits, zeroed, reusing its word storage.
void reshape_zero(BitVector& bv, std::size_t nbits) {
  bv.resize(nbits);
  bv.reset_all();
}

}  // namespace

Liveness::Liveness(const Cfg& cfg, CompileContext* ctx)
    : fn_(&cfg.function()), cfg_(&cfg) {
  if (ctx != nullptr) {
    pool_ = &ctx->liveness.get<StoragePool<LivenessStorage>>();
    st_ = pool_->take();
  }
  const std::uint32_t maxid =
      std::max(fn_->num_regs(RegClass::Int), fn_->num_regs(RegClass::Fp));
  nkeys_ = 2 * static_cast<std::size_t>(maxid) + 2;

  reshape_zero(st_.ret_live, nkeys_);
  for (const Reg& r : fn_->live_out()) st_.ret_live.set(RegKey::key(r));

  // Never shrink the pooled rows: a smaller function reuses a prefix of the
  // previous one's rows; destroying the excess here would force the next
  // larger function to reallocate every row.
  const std::size_t n = fn_->num_blocks();
  for (BitVector& row : st_.rows) reshape_zero(row, nkeys_);
  while (st_.rows.size() < n) st_.rows.emplace_back(nkeys_);

  // Backward iterative fixpoint; visit blocks in reverse layout order (a good
  // approximation of reverse topological order for loop bodies).
  BitVector& live = st_.scratch;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = fn_->blocks().rbegin(); it != fn_->blocks().rend(); ++it) {
      const Block& b = *it;
      assign_exit_live(b.id, live);
      for (auto ii = b.insts.rbegin(); ii != b.insts.rend(); ++ii) transfer(*ii, live);
      BitVector& row = st_.rows[fn_->layout_index(b.id)];
      if (!(live == row)) {
        std::swap(row, live);
        changed = true;
      }
    }
  }
}

Liveness::~Liveness() {
  if (pool_ != nullptr) pool_->give(std::move(st_));
}

void Liveness::transfer(const Instruction& in, BitVector& live) const {
  if (in.op == Opcode::RET) {
    live = st_.ret_live;
    return;
  }
  if (in.op == Opcode::JUMP) {
    live = st_.rows[fn_->layout_index(in.target)];
    return;
  }
  if (in.is_branch()) live |= st_.rows[fn_->layout_index(in.target)];
  if (in.has_dest()) live.reset(RegKey::key(in.dst));
  if (in.src1.valid()) live.set(RegKey::key(in.src1));
  if (in.src2.valid() && !in.src2_is_imm) live.set(RegKey::key(in.src2));
}

void Liveness::assign_exit_live(BlockId b, BitVector& live) const {
  const Block& blk = fn_->block(b);
  const BlockId next = blk.has_terminator() ? kNoBlock : fn_->layout_next(b);
  if (next == kNoBlock) {
    reshape_zero(live, nkeys_);
    return;
  }
  live = st_.rows[fn_->layout_index(next)];
}

BitVector Liveness::live_after(BlockId b, std::size_t idx) const {
  const Block& blk = fn_->block(b);
  BitVector live;
  assign_exit_live(b, live);
  for (std::size_t i = blk.insts.size(); i-- > idx + 1;) transfer(blk.insts[i], live);
  return live;
}

std::vector<BitVector> Liveness::live_after_all(BlockId b) const {
  std::vector<BitVector> out;
  live_after_all_into(b, out);
  out.resize(fn_->block(b).insts.size());  // _into may leave pooled excess rows
  return out;
}

void Liveness::live_after_all_into(BlockId b, std::vector<BitVector>& out) const {
  const Block& blk = fn_->block(b);
  const std::size_t n = blk.insts.size();
  // Grow-only, as with the liveness rows: when the previous block was larger,
  // rows [n, out.size()) are left in place (callers index only [0, n)), so a
  // sweep over mixed-size blocks reallocates nothing once warm.
  for (std::size_t i = 0; i < out.size() && i < n; ++i) reshape_zero(out[i], nkeys_);
  while (out.size() < n) out.emplace_back(nkeys_);

  // The running live set reuses the fixpoint scratch row (sized nkeys_, so
  // the copy assignments below never reallocate once warm).
  BitVector& live = st_.scratch;
  assign_exit_live(b, live);
  for (std::size_t i = n; i-- > 0;) {
    out[i] = live;
    transfer(blk.insts[i], live);
  }
}

}  // namespace ilp
