// Control-flow graph utilities over a Function's extended basic blocks.
//
// Successors of a block are every conditional-branch target inside it (side
// exits included), its JUMP target, and its layout fall-through when the
// block does not end in JUMP/RET.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace ilp {

class Cfg {
 public:
  explicit Cfg(const Function& fn);

  [[nodiscard]] const std::vector<BlockId>& succs(BlockId b) const {
    return succs_[fn_->layout_index(b)];
  }
  [[nodiscard]] const std::vector<BlockId>& preds(BlockId b) const {
    return preds_[fn_->layout_index(b)];
  }
  [[nodiscard]] BlockId entry() const { return fn_->blocks().front().id; }

  // Blocks in reverse postorder from the entry (unreachable blocks appended
  // at the end in layout order so analyses still see them).
  [[nodiscard]] const std::vector<BlockId>& rpo() const { return rpo_; }

  [[nodiscard]] const Function& function() const { return *fn_; }

 private:
  const Function* fn_;
  std::vector<std::vector<BlockId>> succs_;  // indexed by layout position
  std::vector<std::vector<BlockId>> preds_;
  std::vector<BlockId> rpo_;
};

}  // namespace ilp
