// Control-flow graph utilities over a Function's extended basic blocks.
//
// Successors of a block are every conditional-branch target inside it (side
// exits included), its JUMP target, and its layout fall-through when the
// block does not end in JUMP/RET.
//
// Construction with a CompileContext recycles the adjacency/RPO storage of
// the previous Cfg built on that context (the pipeline builds dozens per
// compile), making warm construction allocation-free.
#pragma once

#include <utility>
#include <vector>

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Pooled innards of a Cfg; lives in CompileContext::cfg between instances.
struct CfgStorage {
  std::vector<std::vector<BlockId>> succs;
  std::vector<std::vector<BlockId>> preds;
  std::vector<BlockId> rpo;
  // Iterative-DFS scratch.
  std::vector<char> state;
  std::vector<BlockId> post;
  std::vector<std::pair<BlockId, std::size_t>> stack;
};

class Cfg {
 public:
  explicit Cfg(const Function& fn, CompileContext* ctx = nullptr);
  ~Cfg();
  Cfg(const Cfg&) = delete;
  Cfg& operator=(const Cfg&) = delete;

  [[nodiscard]] const std::vector<BlockId>& succs(BlockId b) const {
    return st_.succs[fn_->layout_index(b)];
  }
  [[nodiscard]] const std::vector<BlockId>& preds(BlockId b) const {
    return st_.preds[fn_->layout_index(b)];
  }
  [[nodiscard]] BlockId entry() const { return fn_->blocks().front().id; }

  // Blocks in reverse postorder from the entry (unreachable blocks appended
  // at the end in layout order so analyses still see them).
  [[nodiscard]] const std::vector<BlockId>& rpo() const { return st_.rpo; }

  [[nodiscard]] const Function& function() const { return *fn_; }

 private:
  const Function* fn_;
  StoragePool<CfgStorage>* pool_ = nullptr;
  CfgStorage st_;
};

}  // namespace ilp
