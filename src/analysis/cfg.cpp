#include "analysis/cfg.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {

namespace {

// Resizes a vector-of-vectors to n rows, clearing rows but keeping their
// heap capacity (the whole point of pooling the storage).
void reuse_rows(std::vector<std::vector<BlockId>>& v, std::size_t n) {
  if (v.size() > n) v.resize(n);
  for (auto& row : v) row.clear();
  while (v.size() < n) v.emplace_back();
}

}  // namespace

Cfg::Cfg(const Function& fn, CompileContext* ctx) : fn_(&fn) {
  if (ctx != nullptr) {
    pool_ = &ctx->cfg.get<StoragePool<CfgStorage>>();
    st_ = pool_->take();
  }
  const std::size_t n = fn.num_blocks();
  reuse_rows(st_.succs, n);
  reuse_rows(st_.preds, n);

  for (const Block& b : fn.blocks()) {
    auto& out = st_.succs[fn.layout_index(b.id)];
    bool falls_through = true;
    for (const Instruction& in : b.insts) {
      if (in.is_branch()) {
        if (std::find(out.begin(), out.end(), in.target) == out.end())
          out.push_back(in.target);
      } else if (in.op == Opcode::JUMP) {
        if (std::find(out.begin(), out.end(), in.target) == out.end())
          out.push_back(in.target);
        falls_through = false;
        break;
      } else if (in.op == Opcode::RET) {
        falls_through = false;
        break;
      }
    }
    if (falls_through) {
      const BlockId next = fn.layout_next(b.id);
      ILP_ASSERT(next != kNoBlock, "block falls through past end of function");
      if (std::find(out.begin(), out.end(), next) == out.end()) out.push_back(next);
    }
  }
  for (const Block& b : fn.blocks())
    for (BlockId s : st_.succs[fn.layout_index(b.id)])
      st_.preds[fn.layout_index(s)].push_back(b.id);

  // Reverse postorder via iterative DFS.
  auto& state = st_.state;  // 0 unvisited, 1 on stack, 2 done
  state.assign(n, 0);
  auto& post = st_.post;
  post.clear();
  auto& stack = st_.stack;
  stack.clear();
  stack.emplace_back(entry(), 0);
  state[fn.layout_index(entry())] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    const auto& out = st_.succs[fn.layout_index(b)];
    if (i < out.size()) {
      const BlockId s = out[i++];
      if (state[fn.layout_index(s)] == 0) {
        state[fn.layout_index(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[fn.layout_index(b)] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  st_.rpo.assign(post.rbegin(), post.rend());
  for (const Block& b : fn.blocks())
    if (state[fn.layout_index(b.id)] == 0) st_.rpo.push_back(b.id);
}

Cfg::~Cfg() {
  if (pool_ != nullptr) pool_->give(std::move(st_));
}

}  // namespace ilp
