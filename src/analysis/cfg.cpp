#include "analysis/cfg.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {

Cfg::Cfg(const Function& fn) : fn_(&fn) {
  const std::size_t n = fn.num_blocks();
  succs_.resize(n);
  preds_.resize(n);

  for (const Block& b : fn.blocks()) {
    auto& out = succs_[fn.layout_index(b.id)];
    bool falls_through = true;
    for (const Instruction& in : b.insts) {
      if (in.is_branch()) {
        if (std::find(out.begin(), out.end(), in.target) == out.end())
          out.push_back(in.target);
      } else if (in.op == Opcode::JUMP) {
        if (std::find(out.begin(), out.end(), in.target) == out.end())
          out.push_back(in.target);
        falls_through = false;
        break;
      } else if (in.op == Opcode::RET) {
        falls_through = false;
        break;
      }
    }
    if (falls_through) {
      const BlockId next = fn.layout_next(b.id);
      ILP_ASSERT(next != kNoBlock, "block falls through past end of function");
      if (std::find(out.begin(), out.end(), next) == out.end()) out.push_back(next);
    }
  }
  for (const Block& b : fn.blocks())
    for (BlockId s : succs_[fn.layout_index(b.id)])
      preds_[fn.layout_index(s)].push_back(b.id);

  // Reverse postorder via iterative DFS.
  std::vector<char> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<BlockId> post;
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(entry(), 0);
  state[fn.layout_index(entry())] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    const auto& out = succs_[fn.layout_index(b)];
    if (i < out.size()) {
      const BlockId s = out[i++];
      if (state[fn.layout_index(s)] == 0) {
        state[fn.layout_index(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[fn.layout_index(b)] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (const Block& b : fn.blocks())
    if (state[fn.layout_index(b.id)] == 0) rpo_.push_back(b.id);
}

}  // namespace ilp
