// Dependence DAG over one extended basic block (superblock), consumed by the
// list scheduler.
//
// Edge kinds:
//   Flow    def -> use        latency = producer latency
//   Anti    use -> def        latency 0 (same-cycle ok when order preserved)
//   Output  def -> def        latency 0 (machine applies writes in order)
//   MemFlow store -> load     latency = store latency (simulator enforces it)
//   MemAnti load -> store     latency 0
//   MemOut  store -> store    latency 0
//   Control superblock-discipline edges around branches, latency 0:
//     * every branch is ordered after the previous branch,
//     * a store never moves above or below a branch,
//     * an instruction whose destination is live-in at a branch's target
//       neither moves above the branch (would clobber the off-trace value)
//       nor below it if it precedes the branch (the exit path needs it),
//     * nothing moves below the block-terminating branch/jump.
//   Loads may move above branches freely: the modeled processor supports
//   non-excepting loads (paper Section 3.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/liveness.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "support/flat_map.hpp"

namespace ilp {

enum class DepKind : std::uint8_t { Flow, Anti, Output, MemFlow, MemAnti, MemOut, Control };

struct DepEdge {
  std::uint32_t from = 0;  // instruction index within the block
  std::uint32_t to = 0;
  int latency = 0;
  DepKind kind = DepKind::Flow;
};

class DepGraph {
 public:
  // `liveness` supplies branch-target live-ins for the control edges; it must
  // outlive this object only during construction.  `preheader`, when given,
  // enables loop-relative memory disambiguation (see BlockAddresses).
  DepGraph(const Function& fn, BlockId block, const MachineModel& machine,
           const Liveness& liveness, BlockId preheader = kNoBlock);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] const DepEdge& edge(std::size_t idx) const { return edges_[idx]; }
  // Adjacency in compressed-sparse-row form: six flat arrays instead of
  // per-node vectors, so construction does O(1) allocations rather than O(n).
  // Spans stay valid for the lifetime of the graph.
  [[nodiscard]] std::span<const std::uint32_t> preds(std::size_t i) const {
    return {in_nodes_.data() + in_off_[i], in_off_[i + 1] - in_off_[i]};
  }
  [[nodiscard]] std::span<const std::uint32_t> succs(std::size_t i) const {
    return {out_nodes_.data() + out_off_[i], out_off_[i + 1] - out_off_[i]};
  }
  // Edge indices leaving / entering node i (parallel to succs/preds).
  [[nodiscard]] std::span<const std::uint32_t> out_edges(std::size_t i) const {
    return {out_eids_.data() + out_off_[i], out_off_[i + 1] - out_off_[i]};
  }
  [[nodiscard]] std::span<const std::uint32_t> in_edges(std::size_t i) const {
    return {in_eids_.data() + in_off_[i], in_off_[i + 1] - in_off_[i]};
  }

  // Longest latency path from node i to any sink (critical-path priority).
  [[nodiscard]] const std::vector<int>& height() const { return height_; }

 private:
  void add_edge(std::uint32_t from, std::uint32_t to, int latency, DepKind kind);
  // Builds the CSR adjacency and the heights once every edge is collected.
  void finalize();

  std::size_t n_ = 0;
  // (from << 32 | to) -> edge index; O(1) duplicate collapse in add_edge.
  FlatHashMap64 edge_index_;
  std::vector<DepEdge> edges_;
  std::vector<std::uint32_t> out_off_, out_nodes_, out_eids_;
  std::vector<std::uint32_t> in_off_, in_nodes_, in_eids_;
  std::vector<int> height_;
};

}  // namespace ilp
