// Symbolic address analysis within one extended basic block.
//
// Tracks every integer register as (root, displacement): `root` names an
// unknown base value (a block live-in or a non-affine definition) and the
// displacement accumulates constant IADD/ISUB/IMOV chains.  Two memory
// references whose addresses share a root but differ in displacement are
// provably distinct; this is the disambiguation that lets unrolled loop
// bodies overlap (paper Figure 1c/d: A+r1i vs A+r1i+4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/function.hpp"

namespace ilp {

struct SymAddr {
  std::int32_t root = -1;      // -1 = unknown/fresh; 0 = the constant root
  std::int64_t disp = 0;

  [[nodiscard]] bool known() const { return root >= 0; }
};

// Relationship between two memory references.
enum class AddrRelation {
  Identical,   // same root, same displacement
  Distinct,    // provably different addresses
  Unknown,     // cannot tell
};

class BlockAddresses {
 public:
  // Analyzes `fn.block(b)`; O(instructions).
  //
  // When `preheader` is given (b is a loop body whose unique out-of-loop
  // predecessor is `preheader`), the analysis is seeded with register
  // relations established there — e.g. induction-variable expansion's
  // "p1 = p0 + 4".  A seeded relation between two registers stays valid on
  // every iteration only if both advance by the same amount per iteration,
  // so registers are grouped by their constant net per-iteration delta
  // (sum of "r = r + C" updates in the body; any other def disqualifies)
  // and only same-delta registers share a seeded root.
  BlockAddresses(const Function& fn, BlockId b, BlockId preheader = kNoBlock);

  // Symbolic address of memory instruction `idx` (which must be a load or
  // store): symbolic(base register at that point) + offset immediate.
  [[nodiscard]] SymAddr address_of(std::size_t idx) const { return mem_addr_[idx]; }

  // Compares the addresses of two memory instructions in this block.
  [[nodiscard]] AddrRelation relation(std::size_t i, std::size_t j) const;

 private:
  std::vector<SymAddr> mem_addr_;  // indexed by instruction position; memory ops only
};

// Combines alias-set ids and symbolic addresses: returns true when the two
// memory operations may touch the same location.
bool may_alias(const Instruction& a, const Instruction& b, AddrRelation rel);

}  // namespace ilp
