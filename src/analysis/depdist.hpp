// Loop-carried dependence direction/distance vectors over affine subscripts.
//
// The frontend lowers every DSL loop to one canonical shape (see
// frontend/compile.cpp lower_loop):
//
//   pre:     ...          IMOV iv, lo
//            ...          <guard: BGT/BLT iv, hi -> exit>   (last instruction)
//   header:  ...body blocks...
//   latch:   ...          IADD iv, iv, #step
//                         <back: BLE/BGE iv, hi -> header>  (last instruction)
//   exit:    (layout successor of latch)
//
// find_canonical_loops recognizes exactly this shape, which is why the nest
// transformations (trans/nest/) run *before* the conventional optimizations:
// once LICM/ivopt rewrite induction variables into pointer-bumping form the
// subscript structure is gone and none of this analysis applies.
//
// Dependence testing follows the paper's per-nest model: every memory
// reference address is symbolically evaluated to an affine form
// c + sum(a_k * iv_k) + sum(b_j * sym_j) over the analyzed induction
// variables and loop-invariant symbolic roots, then pairs of references are
// intersected with trip-count-bounded integer solving.  Direction vectors use
// the standard notation: '<' at level k means the source iteration precedes
// the sink iteration at that level (distance d_k > 0), '=' means same
// iteration, '*' means unknown.  Anything non-affine degrades to '*' — never
// to silence.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace ilp {

// A loop in the frontend's canonical lowered shape.
struct CanonLoop {
  Reg iv;
  std::int64_t step = 0;
  BlockId pre = kNoBlock;      // block ending in the zero-trip guard
  std::size_t init_idx = 0;    // index in `pre` of "IMOV iv, lo"
  BlockId header = kNoBlock;   // first body block (back-branch target)
  BlockId latch = kNoBlock;    // block ending [iv update, back branch]
  std::size_t update_idx = 0;  // index in `latch` of "iv += step"
  BlockId exit = kNoBlock;     // guard target (layout successor of latch)
  Reg lo_reg, hi_reg;
  bool lo_known = false, hi_known = false;  // constant bound values resolved
  std::int64_t lo = 0, hi = 0;
  bool trip_known = false;
  std::int64_t trip = 0;  // iterations executed (0 when the guard skips)

  // True when the whole body is one extended basic block (header == latch),
  // the shape every dependence query below requires.
  [[nodiscard]] bool single_block() const { return header == latch; }
};

// All canonical loops in `fn`, in layout order of their headers.  Loops whose
// induction variable or bound is also written elsewhere in the body are
// rejected (the canonical shape must fully describe the iteration space).
std::vector<CanonLoop> find_canonical_loops(const Function& fn);

// True when `outer` immediately and perfectly encloses `inner`: the shared
// block between them holds only the inner loop's prologue and the outer
// latch holds nothing but the update/back-branch pair.  This is the
// structural precondition for interchange and tiling.
bool perfectly_nested(const Function& fn, const CanonLoop& outer, const CanonLoop& inner);

// Direction of a dependence at one loop level.
enum class Dir : unsigned char { Lt, Eq, Gt, Star };

inline char dir_char(Dir d) {
  switch (d) {
    case Dir::Lt: return '<';
    case Dir::Eq: return '=';
    case Dir::Gt: return '>';
    case Dir::Star: return '*';
  }
  return '?';
}

// One dependence between two memory references of a 2-deep nest body.
struct NestDep {
  std::size_t a = 0, b = 0;  // instruction indices into the inner body block
  Dir d0 = Dir::Star;        // outer-loop direction
  Dir d1 = Dir::Star;        // inner-loop direction
  bool dist_known = false;   // true when the solution is a unique distance
  std::int64_t dist0 = 0, dist1 = 0;
};

// All dependences (flow/anti/output, canonicalized to lexicographically
// non-negative vectors) between memory references in the single-block body of
// the perfect nest (outer, inner).  Pairs provably disjoint are omitted.
std::vector<NestDep> nest_dependences(const Function& fn, const CanonLoop& outer,
                                      const CanonLoop& inner);

// Interchange is illegal exactly when some dependence could be (<, >): such a
// vector becomes lexicographically negative after the swap, i.e. the sink
// would execute before its source.
bool interchange_legal_vectors(const std::vector<NestDep>& deps);

// Mechanical validity of the control swap alone: perfect nesting plus an
// outer-invariant prologue whose definitions the body does not clobber.
// interchange_legal adds the semantic layer (carried scalars, escaping
// definitions, direction vectors) on top of this.
bool interchange_structural(const Function& fn, const CanonLoop& outer,
                            const CanonLoop& inner);

// Full interchange (and tiling) legality: interchange_structural, no
// loop-carried scalar recurrences in the body, no body-defined register
// observable after the nest, and no (<, >) vector.
bool interchange_legal(const Function& fn, const CanonLoop& outer, const CanonLoop& inner);

// Sum over body memory references of the absolute address coefficient on each
// induction variable: the interchange profitability signal (a smaller inner
// coefficient means better spatial locality in the inner loop).
struct NestStrides {
  std::int64_t outer = 0, inner = 0;
  bool known = false;
};
NestStrides nest_strides(const Function& fn, const CanonLoop& outer, const CanonLoop& inner);

// Sign set of possible iteration distances (sink minus source) between two
// memory references of one single-block loop body; used by fission to orient
// dependence edges.  `neg` means the reference later in program order can
// depend backward (sink iteration earlier), which reverses the edge.
struct DepSigns {
  bool neg = false, zero = false, pos = false;
  [[nodiscard]] bool any() const { return neg || zero || pos; }
};
DepSigns loop_ref_dep_signs(const Function& fn, const CanonLoop& loop, std::size_t p_idx,
                            std::size_t q_idx);

// True when fusing `first` and `second` (same constant bounds and step, with
// `second`'s body mapped onto `first`'s induction variable) would create a
// backward loop-carried dependence: some reference of `second` at iteration y
// conflicting with a reference of `first` at iteration x > y.  Only the
// memory side; the fusion pass performs the structural and scalar checks.
bool fusion_preventing_dep(const Function& fn, const CanonLoop& first,
                           const CanonLoop& second);

// Registers written inside the single-block body that are read before their
// first in-body write (loop-carried scalar recurrences, e.g. reductions).
// The induction variable is excluded.  Interchange/tiling reject nests with
// any of these: reordering iterations would reassociate the recurrence.
std::vector<Reg> carried_scalars(const Function& fn, const CanonLoop& loop);

}  // namespace ilp
