#include "analysis/tripcount.hpp"

#include "support/assert.hpp"

namespace ilp {

Reg emit_trip_count(Function& fn, BlockId pre_id, const CountedLoopInfo& info) {
  std::vector<Instruction> code;
  const Reg diff = fn.new_int_reg();
  // diff = bound - iv   (sign-normalized below by dividing by step)
  if (info.bound_is_imm) {
    code.push_back(make_ldi(diff, info.bound_imm));
    code.push_back(make_binary(Opcode::ISUB, diff, diff, info.iv));
  } else {
    code.push_back(make_binary(Opcode::ISUB, diff, info.bound_reg, info.iv));
  }
  // T before clamping, by comparison kind:
  //   BLT/BGT:  ceil(diff/step)
  //   BLE/BGE:  floor(diff/step) + 1
  //   BNE:      diff/step  (assumed exact)
  const Reg t = fn.new_int_reg();
  switch (info.cmp) {
    case Opcode::BLT:
    case Opcode::BGT:
      code.push_back(make_binary_imm(Opcode::IADD, t, diff,
                                     info.step > 0 ? info.step - 1 : info.step + 1));
      code.push_back(make_binary_imm(Opcode::IDIV, t, t, info.step));
      break;
    case Opcode::BLE:
    case Opcode::BGE:
      code.push_back(make_binary_imm(Opcode::IDIV, t, diff, info.step));
      code.push_back(make_binary_imm(Opcode::IADD, t, t, 1));
      break;
    case Opcode::BNE:
      code.push_back(make_binary_imm(Opcode::IDIV, t, diff, info.step));
      break;
    default:
      ILP_UNREACHABLE("unexpected counted-loop comparison");
  }
  code.push_back(make_binary_imm(Opcode::IMAX, t, t, 1));  // do-while: T >= 1

  Block& pre = fn.block(pre_id);
  const std::size_t pos = pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
  pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), code.begin(),
                   code.end());
  return t;
}

}  // namespace ilp
