// Reaching definitions and def-use chains over extended basic blocks.
//
// Definition sites are numbered function-wide; the block-level fixpoint
// propagates which sites reach each block entry, and per-instruction queries
// rebuild the in-block state on demand.  Used by tests and the pipeline
// validation helper `find_undefined_uses` (a register read with no reaching
// definition and no function-input status indicates a transformation bug).
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "support/bitvector.hpp"

namespace ilp {

struct DefSite {
  BlockId block = kNoBlock;
  std::size_t index = 0;  // instruction index within the block
  Reg reg;
};

class ReachingDefs {
 public:
  explicit ReachingDefs(const Cfg& cfg);

  [[nodiscard]] const std::vector<DefSite>& def_sites() const { return sites_; }

  // Definition sites reaching the entry of `b` (bit i = sites()[i]).
  [[nodiscard]] const BitVector& reach_in(BlockId b) const {
    return in_[fn_->layout_index(b)];
  }

  // Definition sites of `r` that may reach the use at (b, idx).
  [[nodiscard]] std::vector<std::size_t> reaching_defs_of(BlockId b, std::size_t idx,
                                                          const Reg& r) const;

 private:
  const Function* fn_;
  const Cfg* cfg_;
  std::vector<DefSite> sites_;
  // Per register key, the site ids defining it (for kill sets).
  std::vector<std::vector<std::size_t>> sites_of_reg_;
  std::vector<BitVector> in_;
};

struct UndefinedUse {
  BlockId block = kNoBlock;
  std::size_t index = 0;
  Reg reg;
};

// Register reads with no reaching definition.  Registers in `inputs` are
// treated as externally initialized (function inputs).
std::vector<UndefinedUse> find_undefined_uses(const Function& fn,
                                              const std::vector<Reg>& inputs = {});

}  // namespace ilp
