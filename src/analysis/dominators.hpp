// Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).
//
// Used for natural-loop detection and for the global single-definition
// constant/copy propagation in the conventional optimizer.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"

namespace ilp {

class Dominators {
 public:
  explicit Dominators(const Cfg& cfg);

  // Immediate dominator; the entry block's idom is itself.  Unreachable
  // blocks report kNoBlock.
  [[nodiscard]] BlockId idom(BlockId b) const { return idom_[fn_->layout_index(b)]; }

  // True if a dominates b (reflexive).
  [[nodiscard]] bool dominates(BlockId a, BlockId b) const;

 private:
  const Function* fn_;
  std::vector<BlockId> idom_;
};

}  // namespace ilp
