#include "analysis/depdist.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace ilp {

namespace {

// Single write of `r` in the whole function, if it is an LDI: the only way a
// loop bound resolves to a compile-time constant in lowered IR.
bool unique_ldi_value(const Function& fn, const Reg& r, std::int64_t& out) {
  const Instruction* def = nullptr;
  for (const auto& b : fn.blocks())
    for (const auto& in : b.insts)
      if (in.writes(r)) {
        if (def != nullptr) return false;
        def = &in;
      }
  if (def == nullptr || def->op != Opcode::LDI) return false;
  out = def->ival;
  return true;
}

std::int64_t trip_count(std::int64_t lo, std::int64_t hi, std::int64_t step) {
  if (step > 0) return hi < lo ? 0 : (hi - lo) / step + 1;
  return lo < hi ? 0 : (lo - hi) / (-step) + 1;
}

// ---- Affine address forms ---------------------------------------------------

// c + a0*iv0 + a1*iv1 + sum(coeff * invariant-symbol).  Symbols are registers
// never written inside the body, keyed by RegKey so equal registers compare
// equal across the two references of a pair.
struct LinForm {
  bool affine = false;
  std::int64_t c = 0;
  std::int64_t a0 = 0, a1 = 0;
  std::vector<std::pair<std::size_t, std::int64_t>> syms;  // sorted by key

  [[nodiscard]] bool is_const() const {
    return affine && a0 == 0 && a1 == 0 && syms.empty();
  }
};

LinForm lf_unknown() { return LinForm{}; }

LinForm lf_const(std::int64_t v) {
  LinForm f;
  f.affine = true;
  f.c = v;
  return f;
}

LinForm lf_sym(std::size_t key) {
  LinForm f;
  f.affine = true;
  f.syms.emplace_back(key, 1);
  return f;
}

LinForm lf_combine(const LinForm& a, const LinForm& b, std::int64_t sign) {
  if (!a.affine || !b.affine) return lf_unknown();
  LinForm f;
  f.affine = true;
  f.c = a.c + sign * b.c;
  f.a0 = a.a0 + sign * b.a0;
  f.a1 = a.a1 + sign * b.a1;
  std::size_t i = 0, j = 0;
  while (i < a.syms.size() || j < b.syms.size()) {
    if (j == b.syms.size() || (i < a.syms.size() && a.syms[i].first < b.syms[j].first)) {
      f.syms.push_back(a.syms[i++]);
    } else if (i == a.syms.size() || b.syms[j].first < a.syms[i].first) {
      f.syms.emplace_back(b.syms[j].first, sign * b.syms[j].second);
      ++j;
    } else {
      const std::int64_t k = a.syms[i].second + sign * b.syms[j].second;
      if (k != 0) f.syms.emplace_back(a.syms[i].first, k);
      ++i;
      ++j;
    }
  }
  return f;
}

LinForm lf_scale(const LinForm& a, std::int64_t k) {
  if (!a.affine) return lf_unknown();
  LinForm f;
  f.affine = true;
  f.c = a.c * k;
  f.a0 = a.a0 * k;
  f.a1 = a.a1 * k;
  if (k != 0)
    for (const auto& s : a.syms) f.syms.emplace_back(s.first, s.second * k);
  return f;
}

bool same_syms(const LinForm& a, const LinForm& b) { return a.syms == b.syms; }

// Forward symbolic evaluation of one extended basic block: per-memory-op
// affine address forms plus the loop-carried scalar set (registers defined in
// the block but read before their first in-block write).
struct BodyForms {
  std::vector<LinForm> addr;  // indexed by instruction position (mem ops only)
  std::vector<Reg> carried;
};

BodyForms analyze_body(const Function& fn, BlockId body, Reg iv0, Reg iv1) {
  const Block& blk = fn.block(body);
  BodyForms out;
  out.addr.resize(blk.insts.size());

  std::unordered_set<std::size_t> defined;
  for (const auto& in : blk.insts)
    if (in.has_dest()) defined.insert(RegKey::key(in.dst));

  std::unordered_map<std::size_t, LinForm> env;
  std::unordered_set<std::size_t> written;
  std::unordered_set<std::size_t> carried_keys;

  auto lookup = [&](const Reg& r) -> LinForm {
    if (iv0.valid() && r == iv0) {
      LinForm f = lf_const(0);
      f.a0 = 1;
      return f;
    }
    if (iv1.valid() && r == iv1) {
      LinForm f = lf_const(0);
      f.a1 = 1;
      return f;
    }
    const std::size_t k = RegKey::key(r);
    const auto it = env.find(k);
    if (it != env.end()) return it->second;
    if (defined.count(k) != 0) {
      // Read of an in-block value before its write: the previous iteration's
      // value flows around the back edge — a loop-carried scalar.
      if (carried_keys.insert(k).second) out.carried.push_back(r);
      return lf_unknown();
    }
    return lf_sym(k);  // invariant: defined outside the loop body
  };

  for (std::size_t idx = 0; idx < blk.insts.size(); ++idx) {
    const Instruction& in = blk.insts[idx];
    for (const Reg& u : in.uses()) (void)lookup(u);  // carried detection
    if (in.is_memory()) out.addr[idx] = lf_combine(lookup(in.src1), lf_const(in.ival), 1);

    if (!in.has_dest()) continue;
    LinForm f = lf_unknown();
    switch (in.op) {
      case Opcode::LDI: f = lf_const(in.ival); break;
      case Opcode::IMOV: f = lookup(in.src1); break;
      case Opcode::IADD:
        f = lf_combine(lookup(in.src1),
                       in.src2_is_imm ? lf_const(in.ival) : lookup(in.src2), 1);
        break;
      case Opcode::ISUB:
        f = lf_combine(lookup(in.src1),
                       in.src2_is_imm ? lf_const(in.ival) : lookup(in.src2), -1);
        break;
      case Opcode::IMUL: {
        if (in.src2_is_imm) {
          f = lf_scale(lookup(in.src1), in.ival);
        } else {
          const LinForm a = lookup(in.src1);
          const LinForm b = lookup(in.src2);
          if (a.is_const())
            f = lf_scale(b, a.c);
          else if (b.is_const())
            f = lf_scale(a, b.c);
        }
        break;
      }
      case Opcode::ISHL:
        if (in.src2_is_imm && in.ival >= 0 && in.ival < 62)
          f = lf_scale(lookup(in.src1), std::int64_t{1} << in.ival);
        break;
      case Opcode::INEG: f = lf_scale(lookup(in.src1), -1); break;
      default: break;  // loads, divisions, fp ops, ...: opaque
    }
    env[RegKey::key(in.dst)] = f;
    written.insert(RegKey::key(in.dst));
  }
  return out;
}

// ---- Pair solving -----------------------------------------------------------

constexpr std::int64_t kUnknownTrip = -1;
constexpr std::int64_t kEnumCap = 4096;  // larger iteration-difference ranges degrade to '*'

// Accumulates the set of canonical (lexicographically non-negative) direction
// pairs between one reference pair, tracking whether the solution set is a
// single concrete distance vector.
struct VecSet {
  bool present[4][4] = {};
  int solutions = 0;
  std::int64_t d0 = 0, d1 = 0;

  [[nodiscard]] bool empty() const {
    for (const auto& row : present)
      for (bool p : row)
        if (p) return false;
    return true;
  }

  void add(Dir a, Dir b) {
    present[static_cast<int>(a)][static_cast<int>(b)] = true;
  }

  void add_star() {
    add(Dir::Star, Dir::Star);
    solutions += 2;  // never report a unique distance
  }

  static Dir dir_of(std::int64_t d) { return d > 0 ? Dir::Lt : d < 0 ? Dir::Gt : Dir::Eq; }

  // One concrete solution: distance (D0, D1) = sink iteration - source
  // iteration.  Lexicographically negative solutions are the same dependence
  // with source and sink swapped; canonicalize by negating.
  void add_solution(std::int64_t D0, std::int64_t D1) {
    if (D0 < 0 || (D0 == 0 && D1 < 0)) {
      D0 = -D0;
      D1 = -D1;
    }
    add(dir_of(D0), dir_of(D1));
    if (solutions == 0) {
      d0 = D0;
      d1 = D1;
      ++solutions;
    } else if (solutions == 1 && (D0 != d0 || D1 != d1)) {
      ++solutions;
    }
  }
};

std::int64_t bound_of(std::int64_t trip) {
  return trip == kUnknownTrip ? kUnknownTrip : trip - 1;
}

bool within(std::int64_t v, std::int64_t bound) {
  if (bound == kUnknownTrip) return true;
  return v >= -bound && v <= bound;
}

// Intersects two affine references over the iteration box.  `U0`/`U1` are
// trip counts (kUnknownTrip when not compile-time constant); `skip_same`
// drops the (0,0) solution (a reference is not dependent on its own
// instance).  Conflicts that cannot be characterized add a (*,*) vector.
void solve_pair(const LinForm& fp, const LinForm& fq, std::int64_t U0, std::int64_t U1,
                bool skip_same, VecSet& vs) {
  if (!fp.affine || !fq.affine || !same_syms(fp, fq)) {
    vs.add_star();
    return;
  }
  // A loop with a known trip of zero or one carries nothing at that level.
  const std::int64_t B0 = bound_of(U0), B1 = bound_of(U1);
  const std::int64_t delta = fq.c - fp.c;
  if (fp.a0 == fq.a0 && fp.a1 == fq.a1) {
    const std::int64_t a0 = fp.a0, a1 = fp.a1;
    // a0*e0 + a1*e1 = delta, e = source iteration - sink iteration, d = -e.
    if (a0 == 0 && a1 == 0) {
      if (delta != 0) return;  // distinct constant addresses
      if ((B0 == 0 || U0 == 1) && (B1 == 0 || U1 == 1)) {
        if (!skip_same) vs.add_solution(0, 0);
        return;
      }
      vs.add_star();  // one address touched on every iteration
      return;
    }
    if (a0 == 0 || a1 == 0) {
      // One axis fixed by the equation, the other free within its bound.
      const std::int64_t a = a0 == 0 ? a1 : a0;
      if (delta % a != 0) return;
      const std::int64_t e_fixed = delta / a;
      const std::int64_t fixed_bound = a0 == 0 ? B1 : B0;
      const std::int64_t free_bound = a0 == 0 ? B0 : B1;
      if (!within(e_fixed, fixed_bound)) return;
      const std::int64_t d_fixed = -e_fixed;
      std::vector<std::int64_t> free_vals{0};
      if (free_bound != 0) {
        free_vals.push_back(1);
        free_vals.push_back(-1);
      }
      for (const std::int64_t d_free : free_vals) {
        const std::int64_t D0 = a0 == 0 ? d_free : d_fixed;
        const std::int64_t D1 = a0 == 0 ? d_fixed : d_free;
        if (skip_same && D0 == 0 && D1 == 0) continue;
        vs.add_solution(D0, D1);
      }
      return;
    }
    // Both coefficients nonzero: enumerate the smaller-range axis.
    const bool enum_outer = B0 != kUnknownTrip && (B1 == kUnknownTrip || B0 <= B1);
    const std::int64_t range = enum_outer ? B0 : B1;
    if (range == kUnknownTrip || range > kEnumCap) {
      vs.add_star();
      return;
    }
    const std::int64_t ae = enum_outer ? a0 : a1;
    const std::int64_t ao = enum_outer ? a1 : a0;
    const std::int64_t bo = enum_outer ? B1 : B0;
    for (std::int64_t e = -range; e <= range; ++e) {
      const std::int64_t rem = delta - ae * e;
      if (rem % ao != 0) continue;
      const std::int64_t other = rem / ao;
      if (!within(other, bo)) continue;
      const std::int64_t e0 = enum_outer ? e : other;
      const std::int64_t e1 = enum_outer ? other : e;
      if (skip_same && e0 == 0 && e1 == 0) continue;
      vs.add_solution(-e0, -e1);
    }
    return;
  }
  // Different linear parts: a gcd test is the only cheap disproof.
  std::int64_t g = 0;
  for (const std::int64_t a : {fp.a0, fp.a1, fq.a0, fq.a1}) g = std::gcd(g, a);
  if (g != 0 && delta % g != 0) return;
  vs.add_star();
}

// True when the pair of memory operations can touch common storage at all
// (alias-set screening before any subscript analysis).
bool arrays_may_overlap(const Instruction& p, const Instruction& q) {
  if (p.array_id >= 0 && q.array_id >= 0) return p.array_id == q.array_id;
  return true;  // kMayAliasAll conflicts with everything
}

}  // namespace

// ---- Canonical loop recognition --------------------------------------------

std::vector<CanonLoop> find_canonical_loops(const Function& fn) {
  std::vector<CanonLoop> out;
  const auto& blocks = fn.blocks();
  for (std::size_t li = 0; li < blocks.size(); ++li) {
    const Block& latch = blocks[li];
    if (latch.insts.size() < 2) continue;
    const Instruction& br = latch.insts.back();
    if (!br.is_branch() || br.src2_is_imm || !br.src2.valid()) continue;
    const std::size_t head_pos = fn.layout_index(br.target);
    if (head_pos > li || head_pos == 0) continue;  // need a back edge with a preheader
    const Instruction& upd = latch.insts[latch.insts.size() - 2];
    if (upd.op != Opcode::IADD || !upd.src2_is_imm) continue;
    if (upd.dst != br.src1 || upd.src1 != upd.dst) continue;

    CanonLoop L;
    L.iv = upd.dst;
    L.step = upd.ival;
    if (L.step == 0) continue;
    if (L.step > 0 && br.op != Opcode::BLE) continue;
    if (L.step < 0 && br.op != Opcode::BGE) continue;
    L.latch = latch.id;
    L.update_idx = latch.insts.size() - 2;
    L.header = br.target;
    L.hi_reg = br.src2;

    const Block& pre = blocks[head_pos - 1];
    if (pre.insts.empty()) continue;
    const Instruction& guard = pre.insts.back();
    if (guard.op != (L.step > 0 ? Opcode::BGT : Opcode::BLT)) continue;
    if (guard.src1 != L.iv || guard.src2_is_imm || guard.src2 != L.hi_reg) continue;
    if (li + 1 >= blocks.size() || guard.target != blocks[li + 1].id) continue;
    L.pre = pre.id;
    L.exit = guard.target;

    // The last write of the induction variable before the guard must be the
    // canonical "IMOV iv, lo" initialization.
    bool found_init = false;
    for (std::size_t k = pre.insts.size() - 1; k-- > 0;) {
      if (!pre.insts[k].writes(L.iv)) continue;
      if (pre.insts[k].op == Opcode::IMOV) {
        L.init_idx = k;
        L.lo_reg = pre.insts[k].src1;
        found_init = true;
      }
      break;
    }
    if (!found_init) continue;

    // The body must leave the induction variable and the bound alone.
    bool clean = true;
    for (std::size_t bi = head_pos; bi <= li && clean; ++bi) {
      const auto& insts = blocks[bi].insts;
      for (std::size_t k = 0; k < insts.size(); ++k) {
        if (bi == li && k == L.update_idx) continue;
        if (insts[k].writes(L.iv) || insts[k].writes(L.hi_reg)) {
          clean = false;
          break;
        }
      }
    }
    if (!clean) continue;

    L.lo_known = unique_ldi_value(fn, L.lo_reg, L.lo);
    L.hi_known = unique_ldi_value(fn, L.hi_reg, L.hi);
    if (L.lo_known && L.hi_known) {
      L.trip_known = true;
      L.trip = trip_count(L.lo, L.hi, L.step);
    }
    out.push_back(L);
  }
  return out;
}

bool perfectly_nested(const Function& fn, const CanonLoop& outer, const CanonLoop& inner) {
  if (outer.header != inner.pre || outer.latch != inner.exit) return false;
  if (!inner.single_block()) return false;
  const Block& outer_latch = fn.block(outer.latch);
  if (outer_latch.insts.size() != 2) return false;  // exactly [update, back branch]
  // The shared block may hold only the inner loop's scalar prologue + guard.
  const Block& shared = fn.block(outer.header);
  for (std::size_t k = 0; k + 1 < shared.insts.size(); ++k) {
    const Instruction& in = shared.insts[k];
    if (!in.has_dest() || in.is_memory() || in.is_control()) return false;
  }
  // The inner body may not branch anywhere except its own back edge.
  const Block& body = fn.block(inner.header);
  for (std::size_t k = 0; k + 1 < body.insts.size(); ++k)
    if (body.insts[k].is_control()) return false;
  return true;
}

std::vector<NestDep> nest_dependences(const Function& fn, const CanonLoop& outer,
                                      const CanonLoop& inner) {
  std::vector<NestDep> out;
  if (!inner.single_block()) return out;
  const Block& body = fn.block(inner.header);
  const BodyForms forms = analyze_body(fn, inner.header, outer.iv, inner.iv);
  const std::int64_t U0 = outer.trip_known ? outer.trip : kUnknownTrip;
  const std::int64_t U1 = inner.trip_known ? inner.trip : kUnknownTrip;

  std::vector<std::size_t> mem;
  for (std::size_t k = 0; k < body.insts.size(); ++k)
    if (body.insts[k].is_memory()) mem.push_back(k);

  for (std::size_t i = 0; i < mem.size(); ++i) {
    for (std::size_t j = i; j < mem.size(); ++j) {
      const Instruction& p = body.insts[mem[i]];
      const Instruction& q = body.insts[mem[j]];
      if (!p.is_store() && !q.is_store()) continue;  // load/load pairs are free
      if (!arrays_may_overlap(p, q)) continue;
      VecSet vs;
      solve_pair(forms.addr[mem[i]], forms.addr[mem[j]], U0, U1, /*skip_same=*/i == j, vs);
      if (vs.empty()) continue;
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          if (!vs.present[a][b]) continue;
          NestDep d;
          d.a = mem[i];
          d.b = mem[j];
          d.d0 = static_cast<Dir>(a);
          d.d1 = static_cast<Dir>(b);
          if (vs.solutions == 1) {
            d.dist_known = true;
            d.dist0 = vs.d0;
            d.dist1 = vs.d1;
          }
          out.push_back(d);
        }
      }
    }
  }
  return out;
}

bool interchange_legal_vectors(const std::vector<NestDep>& deps) {
  for (const NestDep& d : deps) {
    const bool outer_lt = d.d0 == Dir::Lt || d.d0 == Dir::Star;
    const bool inner_gt = d.d1 == Dir::Gt || d.d1 == Dir::Star;
    if (outer_lt && inner_gt) return false;  // (<, >) flips lexicographic order
  }
  return true;
}

std::vector<Reg> carried_scalars(const Function& fn, const CanonLoop& loop) {
  if (!loop.single_block()) return {};
  BodyForms forms = analyze_body(fn, loop.header, kNoReg, loop.iv);
  return std::move(forms.carried);
}

bool interchange_structural(const Function& fn, const CanonLoop& outer,
                            const CanonLoop& inner) {
  if (!perfectly_nested(fn, outer, inner)) return false;

  const Block& body = fn.block(inner.header);
  const Block& shared = fn.block(outer.header);

  // Registers written in the body (the inner induction variable included —
  // its update lives there).
  std::unordered_set<std::size_t> body_defs;
  for (const auto& in : body.insts)
    if (in.has_dest()) body_defs.insert(RegKey::key(in.dst));

  // The shared prologue must be invariant in the outer loop: it may read
  // neither the outer induction variable nor anything the body writes, and
  // what it defines must not be redefined by the body.  The one exception is
  // the inner loop's own init ("IMOV iv, lo"): its destination is the inner
  // induction variable, which the body's update necessarily redefines.
  std::unordered_set<std::size_t> local_defs;
  for (std::size_t k = 0; k + 1 < shared.insts.size(); ++k) {
    const Instruction& in = shared.insts[k];
    for (const Reg& u : in.uses()) {
      if (u == outer.iv) return false;
      const std::size_t key = RegKey::key(u);
      if (body_defs.count(key) != 0 && local_defs.count(key) == 0) return false;
    }
    if (k != inner.init_idx && body_defs.count(RegKey::key(in.dst)) != 0) return false;
    local_defs.insert(RegKey::key(in.dst));
  }
  return true;
}

bool interchange_legal(const Function& fn, const CanonLoop& outer, const CanonLoop& inner) {
  if (!interchange_structural(fn, outer, inner)) return false;

  const Block& body = fn.block(inner.header);
  const Block& shared = fn.block(outer.header);

  std::unordered_set<std::size_t> body_defs;
  for (const auto& in : body.insts)
    if (in.has_dest()) body_defs.insert(RegKey::key(in.dst));
  std::unordered_set<std::size_t> local_defs;
  for (std::size_t k = 0; k + 1 < shared.insts.size(); ++k)
    local_defs.insert(RegKey::key(shared.insts[k].dst));

  // Nothing computed per-iteration may be observable after the nest: the
  // interchange permutes iteration execution order (and the prologue hoist
  // changes execution counts), which only final memory and live-out scalars
  // can witness.
  std::unordered_set<std::size_t> internal = body_defs;
  for (const std::size_t k : local_defs) internal.insert(k);
  internal.insert(RegKey::key(outer.iv));
  internal.insert(RegKey::key(inner.iv));
  for (const Reg& r : fn.live_out())
    if (internal.count(RegKey::key(r)) != 0) return false;
  for (const auto& blk : fn.blocks()) {
    if (blk.id == body.id || blk.id == shared.id) continue;
    const bool is_outer_latch = blk.id == outer.latch;
    const bool is_outer_pre = blk.id == outer.pre;
    for (std::size_t k = 0; k < blk.insts.size(); ++k) {
      for (const Reg& u : blk.insts[k].uses()) {
        const std::size_t key = RegKey::key(u);
        if (internal.count(key) == 0) continue;
        // Structural reads of the induction variables are part of the nest.
        if (is_outer_latch && u == outer.iv) continue;
        if (is_outer_pre && u == outer.iv && k >= outer.init_idx) continue;
        return false;
      }
    }
  }

  // Loop-carried scalar recurrences (reductions, searches) order-depend on
  // the iteration sequence; interchange would reassociate them.
  if (!carried_scalars(fn, inner).empty()) return false;

  return interchange_legal_vectors(nest_dependences(fn, outer, inner));
}

NestStrides nest_strides(const Function& fn, const CanonLoop& outer, const CanonLoop& inner) {
  NestStrides s;
  if (!inner.single_block()) return s;
  const Block& body = fn.block(inner.header);
  const BodyForms forms = analyze_body(fn, inner.header, outer.iv, inner.iv);
  for (std::size_t k = 0; k < body.insts.size(); ++k) {
    if (!body.insts[k].is_memory()) continue;
    const LinForm& f = forms.addr[k];
    if (!f.affine) continue;
    s.known = true;
    s.outer += f.a0 < 0 ? -f.a0 : f.a0;
    s.inner += f.a1 < 0 ? -f.a1 : f.a1;
  }
  return s;
}

DepSigns loop_ref_dep_signs(const Function& fn, const CanonLoop& loop, std::size_t p_idx,
                            std::size_t q_idx) {
  DepSigns s;
  if (!loop.single_block()) {
    s.neg = s.zero = s.pos = true;
    return s;
  }
  const Block& body = fn.block(loop.header);
  const Instruction& p = body.insts[p_idx];
  const Instruction& q = body.insts[q_idx];
  if (!arrays_may_overlap(p, q)) return s;

  const BodyForms forms = analyze_body(fn, loop.header, kNoReg, loop.iv);
  const LinForm& fp = forms.addr[p_idx];
  const LinForm& fq = forms.addr[q_idx];
  const std::int64_t U = loop.trip_known ? loop.trip : kUnknownTrip;
  const std::int64_t B = bound_of(U);

  if (!fp.affine || !fq.affine || !same_syms(fp, fq)) {
    s.neg = s.zero = s.pos = true;
    return s;
  }
  const std::int64_t delta = fq.c - fp.c;
  if (fp.a1 == fq.a1) {
    const std::int64_t a = fp.a1;
    if (a == 0) {
      if (delta != 0) return s;
      s.zero = true;
      if (B != 0) s.neg = s.pos = true;
      return s;
    }
    if (delta % a != 0) return s;
    const std::int64_t d = -delta / a;  // sink iteration - source iteration
    if (!within(d, B)) return s;
    (d < 0 ? s.neg : d > 0 ? s.pos : s.zero) = true;
    return s;
  }
  const std::int64_t g = std::gcd(std::gcd(fp.a1, fq.a1), std::int64_t{0});
  if (g != 0 && delta % g != 0) return s;
  s.neg = s.zero = s.pos = true;
  return s;
}

bool fusion_preventing_dep(const Function& fn, const CanonLoop& first,
                           const CanonLoop& second) {
  if (!first.single_block() || !second.single_block()) return true;
  const Block& b1 = fn.block(first.header);
  const Block& b2 = fn.block(second.header);
  const BodyForms f1 = analyze_body(fn, first.header, kNoReg, first.iv);
  const BodyForms f2 = analyze_body(fn, second.header, kNoReg, second.iv);
  const std::int64_t U = first.trip_known ? first.trip : kUnknownTrip;
  const std::int64_t B = bound_of(U);

  for (std::size_t i = 0; i < b1.insts.size(); ++i) {
    const Instruction& p = b1.insts[i];
    if (!p.is_memory()) continue;
    for (std::size_t j = 0; j < b2.insts.size(); ++j) {
      const Instruction& q = b2.insts[j];
      if (!q.is_memory()) continue;
      if (!p.is_store() && !q.is_store()) continue;
      if (!arrays_may_overlap(p, q)) continue;
      const LinForm& fp = f1.addr[i];
      const LinForm& fq = f2.addr[j];
      if (!fp.affine || !fq.affine || !same_syms(fp, fq)) return true;
      const std::int64_t delta = fq.c - fp.c;
      if (fp.a1 == fq.a1) {
        const std::int64_t a = fp.a1;
        if (a == 0) {
          // Same fixed address in both bodies: any second-body access at
          // iteration y conflicts with a first-body access at x > y.
          if (delta == 0 && (B != 0)) return true;
          continue;
        }
        // Conflict between first@x and second@y needs a*(x - y) = delta;
        // fusion breaks when some x > y solution exists inside the trip box.
        if (delta % a != 0) continue;
        const std::int64_t k = delta / a;  // x - y
        if (k >= 1 && (B == kUnknownTrip || k <= B)) return true;
        continue;
      }
      const std::int64_t g = std::gcd(fp.a1, fq.a1);
      if (g != 0 && delta % g != 0) continue;
      return true;  // incomparable subscript shapes: assume the worst
    }
  }
  return false;
}

}  // namespace ilp
