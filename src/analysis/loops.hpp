// Natural-loop detection and the "simple loop" shape that the ILP
// transformations operate on.
//
// The execution model (paper Section 1) exploits multiprocessor parallelism
// in outer loops and ILP in inner loops; every transformation here targets an
// innermost loop whose body is a single extended basic block:
//
//   preheader:  ...                         (falls through or jumps to body)
//   body:       ...instructions...
//               [optional side-exit branches out of the loop]
//               <cond branch> body          (the back edge, last instruction)
//   exit:       ...                         (layout fall-through)
//
// Counted loops additionally have a recognizable induction update
// "iv = iv + step" (step a compile-time constant) feeding a back-edge
// comparison against a loop-invariant bound, which is what loop unrolling's
// preconditioning needs.
#pragma once

#include <optional>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"

namespace ilp {

struct NaturalLoop {
  BlockId header = kNoBlock;
  std::vector<BlockId> blocks;  // includes header
  std::vector<BlockId> latches;

  [[nodiscard]] bool contains(BlockId b) const;
};

// All natural loops (one per header; back edges to the same header merged).
std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg, const Dominators& dom);

// The restricted single-extended-block loop shape.
struct SimpleLoop {
  BlockId body = kNoBlock;       // the single block (header == latch)
  BlockId preheader = kNoBlock;  // unique out-of-loop predecessor
  std::size_t back_branch = 0;   // index of the back edge (last instruction)
  std::vector<std::size_t> side_exits;  // indices of in-body exit branches

  [[nodiscard]] bool has_side_exits() const { return !side_exits.empty(); }
};

// Recognizes simple loops; returns innermost-only (which, for this shape, is
// every single-block self-loop whose preheader is unique).
std::vector<SimpleLoop> find_simple_loops(const Cfg& cfg, const Dominators& dom);

// Counted-loop pattern for preconditioned unrolling.
struct CountedLoopInfo {
  Reg iv;                      // induction register tested by the back edge
  std::int64_t step = 0;       // compile-time constant per-iteration increment
  std::size_t update_idx = 0;  // index of the "iv += step" instruction
  // Back-edge comparison: iv <cmp> bound  (bound register or immediate).
  Opcode cmp = Opcode::BLT;
  Reg bound_reg;               // invalid if bound is an immediate
  std::int64_t bound_imm = 0;
  bool bound_is_imm = false;
};

// Matches the counted-loop pattern for `loop` in `fn`:
//   * the back-edge branch compares an integer register `iv` (BLT/BLE/BGT/
//     BGE/BNE) against a loop-invariant bound,
//   * exactly one instruction in the body writes `iv`, and it is
//     "iv = iv + C" or "iv = iv - C",
//   * the bound operand is not written inside the body.
// Returns nullopt if the loop is not counted (e.g. Figure 6's data-dependent
// search loop).
std::optional<CountedLoopInfo> match_counted_loop(const Function& fn, const SimpleLoop& loop);

}  // namespace ilp
