#include "analysis/loops.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {

bool NaturalLoop::contains(BlockId b) const {
  return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg, const Dominators& dom) {
  const Function& fn = cfg.function();
  std::vector<NaturalLoop> loops;

  for (const Block& b : fn.blocks()) {
    for (BlockId s : cfg.succs(b.id)) {
      if (!dom.dominates(s, b.id)) continue;  // not a back edge
      // Find or create the loop with header s.
      NaturalLoop* loop = nullptr;
      for (auto& l : loops)
        if (l.header == s) loop = &l;
      if (loop == nullptr) {
        loops.push_back(NaturalLoop{s, {s}, {}});
        loop = &loops.back();
      }
      loop->latches.push_back(b.id);
      // Flood backwards from the latch, stopping at the header.
      std::vector<BlockId> work{b.id};
      while (!work.empty()) {
        const BlockId x = work.back();
        work.pop_back();
        if (loop->contains(x)) continue;
        loop->blocks.push_back(x);
        for (BlockId p : cfg.preds(x)) work.push_back(p);
      }
    }
  }
  return loops;
}

std::vector<SimpleLoop> find_simple_loops(const Cfg& cfg, const Dominators& dom) {
  (void)dom;
  const Function& fn = cfg.function();
  std::vector<SimpleLoop> out;

  for (const Block& b : fn.blocks()) {
    if (b.insts.empty()) continue;
    const Instruction& last = b.insts.back();
    if (!last.is_branch() || last.target != b.id) continue;  // need self back edge

    SimpleLoop loop;
    loop.body = b.id;
    loop.back_branch = b.insts.size() - 1;

    // Every other branch in the body must leave the loop (side exit); a
    // second branch back to the body would make the shape non-simple.
    bool simple = true;
    for (std::size_t i = 0; i + 1 < b.insts.size(); ++i) {
      const Instruction& in = b.insts[i];
      if (in.op == Opcode::JUMP || in.op == Opcode::RET) {
        simple = false;  // terminator mid-block would already fail the verifier
        break;
      }
      if (in.is_branch()) {
        if (in.target == b.id) {
          simple = false;
          break;
        }
        loop.side_exits.push_back(i);
      }
    }
    if (!simple) continue;

    // Unique out-of-loop predecessor = preheader.
    BlockId pre = kNoBlock;
    for (BlockId p : cfg.preds(b.id)) {
      if (p == b.id) continue;
      if (pre != kNoBlock) {
        pre = kNoBlock;
        break;
      }
      pre = p;
    }
    if (pre == kNoBlock) continue;
    loop.preheader = pre;
    out.push_back(std::move(loop));
  }
  return out;
}

std::optional<CountedLoopInfo> match_counted_loop(const Function& fn, const SimpleLoop& loop) {
  const Block& body = fn.block(loop.body);
  const Instruction& br = body.insts[loop.back_branch];
  if (op_is_fp_compare(br.op) || br.op == Opcode::BEQ) return std::nullopt;

  CountedLoopInfo info;
  info.iv = br.src1;
  info.cmp = br.op;
  info.bound_is_imm = br.src2_is_imm;
  info.bound_reg = br.src2;
  info.bound_imm = br.ival;
  if (!info.iv.is_int()) return std::nullopt;

  // The bound must be loop-invariant.
  if (!info.bound_is_imm) {
    for (const Instruction& in : body.insts)
      if (in.writes(info.bound_reg)) return std::nullopt;
  }

  // Exactly one def of iv, of the form iv = iv +/- C.
  int defs = 0;
  for (std::size_t i = 0; i < body.insts.size(); ++i) {
    const Instruction& in = body.insts[i];
    if (!in.writes(info.iv)) continue;
    ++defs;
    if (defs > 1) return std::nullopt;
    const bool is_inc = (in.op == Opcode::IADD || in.op == Opcode::ISUB) && in.src2_is_imm &&
                        in.src1 == info.iv;
    if (!is_inc) return std::nullopt;
    info.step = in.op == Opcode::IADD ? in.ival : -in.ival;
    info.update_idx = i;
  }
  if (defs != 1 || info.step == 0) return std::nullopt;

  // The trip direction must match the comparison, otherwise the loop is not
  // counted by this iv (e.g. decrementing iv with BLT-against-upper-bound
  // may never terminate; reject and let the caller skip unrolling).
  const bool up = info.step > 0;
  switch (info.cmp) {
    case Opcode::BLT:
    case Opcode::BLE:
      if (!up) return std::nullopt;
      break;
    case Opcode::BGT:
    case Opcode::BGE:
      if (up) return std::nullopt;
      break;
    case Opcode::BNE:
      break;  // direction-agnostic; trip count handled by caller
    default:
      return std::nullopt;
  }
  return info;
}

}  // namespace ilp
