// Register liveness over extended basic blocks.
//
// Side-exit branches in the middle of a block make classic block-summary
// (use/def) liveness unsound, so the fixpoint recomputes each block's live-in
// with a full backward instruction scan that unions target live-ins at every
// branch.  RET instructions inject the function's declared live-out set.
//
// Register universe: both classes share one dense key space (RegKey), so one
// bit vector covers integer and floating registers.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "support/bitvector.hpp"

namespace ilp {

class Liveness {
 public:
  explicit Liveness(const Cfg& cfg);

  [[nodiscard]] const BitVector& live_in(BlockId b) const {
    return live_in_[fn_->layout_index(b)];
  }

  // Live set immediately *after* instruction `idx` of block `b` (i.e. before
  // the backward transfer of that instruction is applied).  Recomputed on
  // demand by one backward scan of the block.
  [[nodiscard]] BitVector live_after(BlockId b, std::size_t idx) const;

  // Per-instruction live-after sets for a whole block, index-aligned with
  // Block::insts.  (Used by the interference-graph builder.)
  [[nodiscard]] std::vector<BitVector> live_after_all(BlockId b) const;

  [[nodiscard]] bool is_live_in(BlockId b, const Reg& r) const {
    return live_in(b).test(RegKey::key(r));
  }

  [[nodiscard]] std::size_t universe_size() const { return nkeys_; }

 private:
  // Applies the backward transfer of one instruction to `live`.
  void transfer(const Instruction& in, BitVector& live) const;
  // Live set at the end of the block (fallthrough successor's live-in, or
  // empty if the block ends in JUMP/RET).
  [[nodiscard]] BitVector exit_live(BlockId b) const;

  const Function* fn_;
  const Cfg* cfg_;
  std::size_t nkeys_ = 0;
  BitVector ret_live_;  // function live-out set as a bit vector
  std::vector<BitVector> live_in_;
};

}  // namespace ilp
