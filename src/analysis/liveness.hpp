// Register liveness over extended basic blocks.
//
// Side-exit branches in the middle of a block make classic block-summary
// (use/def) liveness unsound, so the fixpoint recomputes each block's live-in
// with a full backward instruction scan that unions target live-ins at every
// branch.  RET instructions inject the function's declared live-out set.
//
// Register universe: both classes share one dense key space (RegKey), so one
// bit vector covers integer and floating registers.
//
// Construction with a CompileContext recycles the bit-vector rows of the
// previous Liveness built on that context; DCE alone rebuilds liveness
// several times per compile, so the warm path re-fills existing words
// instead of allocating.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "support/bitvector.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Pooled innards of a Liveness; lives in CompileContext::liveness.
struct LivenessStorage {
  std::vector<BitVector> rows;  // live-in per block (layout index)
  BitVector ret_live;           // function live-out set as a bit vector
  BitVector scratch;            // running set for the backward scans
};

class Liveness {
 public:
  explicit Liveness(const Cfg& cfg, CompileContext* ctx = nullptr);
  ~Liveness();
  Liveness(const Liveness&) = delete;
  Liveness& operator=(const Liveness&) = delete;

  [[nodiscard]] const BitVector& live_in(BlockId b) const {
    return st_.rows[fn_->layout_index(b)];
  }

  // Live set immediately *after* instruction `idx` of block `b` (i.e. before
  // the backward transfer of that instruction is applied).  Recomputed on
  // demand by one backward scan of the block.
  [[nodiscard]] BitVector live_after(BlockId b, std::size_t idx) const;

  // Per-instruction live-after sets for a whole block, index-aligned with
  // Block::insts.  (Used by the interference-graph builder.)
  [[nodiscard]] std::vector<BitVector> live_after_all(BlockId b) const;

  // As live_after_all, but refills `out` in place so a pooled buffer keeps
  // its allocations across blocks and compiles.
  void live_after_all_into(BlockId b, std::vector<BitVector>& out) const;

  [[nodiscard]] bool is_live_in(BlockId b, const Reg& r) const {
    return live_in(b).test(RegKey::key(r));
  }

  [[nodiscard]] std::size_t universe_size() const { return nkeys_; }

 private:
  // Applies the backward transfer of one instruction to `live`.
  void transfer(const Instruction& in, BitVector& live) const;
  // Sets `live` to the set at the end of the block (fallthrough successor's
  // live-in, or empty if the block ends in JUMP/RET).
  void assign_exit_live(BlockId b, BitVector& live) const;

  const Function* fn_;
  const Cfg* cfg_;
  std::size_t nkeys_ = 0;
  StoragePool<LivenessStorage>* pool_ = nullptr;
  // mutable: const queries (live_after_all_into) reuse the scratch row as
  // their running set; the rows themselves are fixed after construction.
  mutable LivenessStorage st_;
};

}  // namespace ilp
