#include "analysis/addresses.hpp"

#include <optional>
#include <unordered_map>

#include "ir/reg.hpp"

namespace ilp {

namespace {

// Forward symbolic scan of one block: register -> (root, displacement).
// `sym` may arrive pre-seeded; `next_root` supplies fresh root ids.
void scan_block(const Block& blk, std::unordered_map<Reg, SymAddr, RegHash>& sym,
                std::int32_t& next_root, std::vector<SymAddr>* mem_addr) {
  auto value_of = [&](const Reg& r) -> SymAddr {
    auto it = sym.find(r);
    if (it != sym.end()) return it->second;
    const SymAddr a{next_root++, 0};
    sym.emplace(r, a);
    return a;
  };

  for (std::size_t i = 0; i < blk.insts.size(); ++i) {
    const Instruction& in = blk.insts[i];
    if (in.is_memory() && mem_addr != nullptr) {
      const SymAddr base = value_of(in.src1);
      (*mem_addr)[i] = SymAddr{base.root, base.disp + in.ival};
    }
    if (!in.has_dest() || in.dst.cls != RegClass::Int) continue;
    switch (in.op) {
      case Opcode::LDI:
        sym[in.dst] = SymAddr{0, in.ival};
        break;
      case Opcode::IMOV:
        sym[in.dst] = value_of(in.src1);
        break;
      case Opcode::IADD:
        if (in.src2_is_imm) {
          const SymAddr a = value_of(in.src1);
          sym[in.dst] = SymAddr{a.root, a.disp + in.ival};
        } else {
          sym[in.dst] = SymAddr{next_root++, 0};
        }
        break;
      case Opcode::ISUB:
        if (in.src2_is_imm) {
          const SymAddr a = value_of(in.src1);
          sym[in.dst] = SymAddr{a.root, a.disp - in.ival};
        } else {
          sym[in.dst] = SymAddr{next_root++, 0};
        }
        break;
      default:
        sym[in.dst] = SymAddr{next_root++, 0};
        break;
    }
  }
}

// Net per-iteration delta of every register in the body: defined only when
// all defs are "r = r (+|-) imm" with src1 == dst; nullopt otherwise.
std::unordered_map<Reg, std::optional<std::int64_t>, RegHash> net_deltas(const Block& blk) {
  std::unordered_map<Reg, std::optional<std::int64_t>, RegHash> out;
  for (const Instruction& in : blk.insts) {
    if (!in.has_dest()) continue;
    auto& slot = out.try_emplace(in.dst, std::optional<std::int64_t>(0)).first->second;
    const bool self_inc = (in.op == Opcode::IADD || in.op == Opcode::ISUB) &&
                          in.src2_is_imm && in.src1 == in.dst;
    if (!self_inc || !slot.has_value()) {
      slot = std::nullopt;
      continue;
    }
    *slot += in.op == Opcode::IADD ? in.ival : -in.ival;
  }
  return out;
}

}  // namespace

BlockAddresses::BlockAddresses(const Function& fn, BlockId b, BlockId preheader) {
  const Block& blk = fn.block(b);
  mem_addr_.assign(blk.insts.size(), SymAddr{});

  std::unordered_map<Reg, SymAddr, RegHash> sym;
  std::int32_t next_root = 1;  // root 0 is the shared constant root

  if (preheader != kNoBlock) {
    // Derive entry relations from the preheader, then keep them only for
    // registers whose per-iteration advance is a known constant, re-rooting
    // so registers with different deltas never share a root.  Constant-root
    // (root 0) entries are also only safe for delta-grouped registers, so
    // they get group roots too.
    std::unordered_map<Reg, SymAddr, RegHash> pre_sym;
    std::int32_t pre_root = 1;
    scan_block(fn.block(preheader), pre_sym, pre_root, nullptr);
    const auto deltas = net_deltas(blk);

    struct GroupKey {
      std::int32_t root;
      std::int64_t delta;
      bool operator==(const GroupKey& o) const {
        return root == o.root && delta == o.delta;
      }
    };
    struct GroupHash {
      std::size_t operator()(const GroupKey& k) const {
        return std::hash<std::int64_t>()((static_cast<std::int64_t>(k.root) << 32) ^
                                         k.delta);
      }
    };
    std::unordered_map<GroupKey, std::int32_t, GroupHash> group_roots;

    for (const auto& [reg, addr] : pre_sym) {
      if (!addr.known()) continue;
      std::int64_t delta = 0;  // not redefined in body => delta 0
      const auto dit = deltas.find(reg);
      if (dit != deltas.end()) {
        if (!dit->second.has_value()) continue;  // non-uniform updates: unsafe
        delta = *dit->second;
      }
      const GroupKey key{addr.root, delta};
      auto [git, inserted] = group_roots.try_emplace(key, next_root);
      if (inserted) ++next_root;
      sym[reg] = SymAddr{git->second, addr.disp};
    }
  }

  scan_block(blk, sym, next_root, &mem_addr_);
}

AddrRelation BlockAddresses::relation(std::size_t i, std::size_t j) const {
  const SymAddr a = mem_addr_[i];
  const SymAddr b = mem_addr_[j];
  if (!a.known() || !b.known() || a.root != b.root) return AddrRelation::Unknown;
  return a.disp == b.disp ? AddrRelation::Identical : AddrRelation::Distinct;
}

bool may_alias(const Instruction& a, const Instruction& b, AddrRelation rel) {
  // Different front-end arrays never overlap.
  if (a.array_id != kMayAliasAll && b.array_id != kMayAliasAll && a.array_id != b.array_id)
    return false;
  return rel != AddrRelation::Distinct;
}

}  // namespace ilp
