#include "analysis/addresses.hpp"

#include <algorithm>
#include <unordered_map>

#include "ir/reg.hpp"

namespace ilp {

namespace {

// Dense register -> (root, displacement) table keyed by RegKey.  A root of
// -1 marks "no value yet" (every assigned entry has root >= 0), so the table
// doubles as its own presence bitmap; using it instead of a hash map keeps
// the per-instruction scan allocation- and hash-free.
struct SymTable {
  explicit SymTable(std::size_t nkeys) : addr(nkeys, SymAddr{-1, 0}) {}
  std::vector<SymAddr> addr;

  [[nodiscard]] bool has(std::size_t k) const { return addr[k].root >= 0; }
};

// Forward symbolic scan of one block: register -> (root, displacement).
// `sym` may arrive pre-seeded; `next_root` supplies fresh root ids.
void scan_block(const Block& blk, SymTable& sym, std::int32_t& next_root,
                std::vector<SymAddr>* mem_addr) {
  auto value_of = [&](const Reg& r) -> SymAddr {
    const std::size_t k = RegKey::key(r);
    if (sym.has(k)) return sym.addr[k];
    const SymAddr a{next_root++, 0};
    sym.addr[k] = a;
    return a;
  };

  for (std::size_t i = 0; i < blk.insts.size(); ++i) {
    const Instruction& in = blk.insts[i];
    if (in.is_memory() && mem_addr != nullptr) {
      const SymAddr base = value_of(in.src1);
      (*mem_addr)[i] = SymAddr{base.root, base.disp + in.ival};
    }
    if (!in.has_dest() || in.dst.cls != RegClass::Int) continue;
    const std::size_t kd = RegKey::key(in.dst);
    switch (in.op) {
      case Opcode::LDI:
        sym.addr[kd] = SymAddr{0, in.ival};
        break;
      case Opcode::IMOV:
        sym.addr[kd] = value_of(in.src1);
        break;
      case Opcode::IADD:
        if (in.src2_is_imm) {
          const SymAddr a = value_of(in.src1);
          sym.addr[kd] = SymAddr{a.root, a.disp + in.ival};
        } else {
          sym.addr[kd] = SymAddr{next_root++, 0};
        }
        break;
      case Opcode::ISUB:
        if (in.src2_is_imm) {
          const SymAddr a = value_of(in.src1);
          sym.addr[kd] = SymAddr{a.root, a.disp - in.ival};
        } else {
          sym.addr[kd] = SymAddr{next_root++, 0};
        }
        break;
      default:
        sym.addr[kd] = SymAddr{next_root++, 0};
        break;
    }
  }
}

// Net per-iteration delta of every register in the body, dense by RegKey:
// defined only when all defs are "r = r (+|-) imm" with src1 == dst.
enum class DeltaState : std::uint8_t { NotSeen, Known, Unsafe };

struct Deltas {
  std::vector<DeltaState> state;
  std::vector<std::int64_t> delta;
};

Deltas net_deltas(const Block& blk, std::size_t nkeys) {
  Deltas out{std::vector<DeltaState>(nkeys, DeltaState::NotSeen),
             std::vector<std::int64_t>(nkeys, 0)};
  for (const Instruction& in : blk.insts) {
    if (!in.has_dest()) continue;
    const std::size_t k = RegKey::key(in.dst);
    const bool self_inc = (in.op == Opcode::IADD || in.op == Opcode::ISUB) &&
                          in.src2_is_imm && in.src1 == in.dst;
    if (!self_inc || out.state[k] == DeltaState::Unsafe) {
      out.state[k] = DeltaState::Unsafe;
      continue;
    }
    out.state[k] = DeltaState::Known;
    out.delta[k] += in.op == Opcode::IADD ? in.ival : -in.ival;
  }
  return out;
}

}  // namespace

BlockAddresses::BlockAddresses(const Function& fn, BlockId b, BlockId preheader) {
  const Block& blk = fn.block(b);
  mem_addr_.assign(blk.insts.size(), SymAddr{});

  const std::size_t nkeys =
      2 * std::max(fn.num_regs(RegClass::Int), fn.num_regs(RegClass::Fp)) + 2;
  SymTable sym(nkeys);
  std::int32_t next_root = 1;  // root 0 is the shared constant root

  if (preheader != kNoBlock) {
    // Derive entry relations from the preheader, then keep them only for
    // registers whose per-iteration advance is a known constant, re-rooting
    // so registers with different deltas never share a root.  Constant-root
    // (root 0) entries are also only safe for delta-grouped registers, so
    // they get group roots too.
    SymTable pre_sym(nkeys);
    std::int32_t pre_root = 1;
    scan_block(fn.block(preheader), pre_sym, pre_root, nullptr);
    const Deltas deltas = net_deltas(blk, nkeys);

    struct GroupKey {
      std::int32_t root;
      std::int64_t delta;
      bool operator==(const GroupKey& o) const {
        return root == o.root && delta == o.delta;
      }
    };
    struct GroupHash {
      std::size_t operator()(const GroupKey& k) const {
        return std::hash<std::int64_t>()((static_cast<std::int64_t>(k.root) << 32) ^
                                         k.delta);
      }
    };
    std::unordered_map<GroupKey, std::int32_t, GroupHash> group_roots;

    for (std::size_t k = 0; k < nkeys; ++k) {
      if (!pre_sym.has(k)) continue;
      const SymAddr addr = pre_sym.addr[k];
      std::int64_t delta = 0;  // not redefined in body => delta 0
      if (deltas.state[k] == DeltaState::Unsafe) continue;  // non-uniform: unsafe
      if (deltas.state[k] == DeltaState::Known) delta = deltas.delta[k];
      const GroupKey key{addr.root, delta};
      auto [git, inserted] = group_roots.try_emplace(key, next_root);
      if (inserted) ++next_root;
      sym.addr[k] = SymAddr{git->second, addr.disp};
    }
  }

  scan_block(blk, sym, next_root, &mem_addr_);
}

AddrRelation BlockAddresses::relation(std::size_t i, std::size_t j) const {
  const SymAddr a = mem_addr_[i];
  const SymAddr b = mem_addr_[j];
  if (!a.known() || !b.known() || a.root != b.root) return AddrRelation::Unknown;
  return a.disp == b.disp ? AddrRelation::Identical : AddrRelation::Distinct;
}

bool may_alias(const Instruction& a, const Instruction& b, AddrRelation rel) {
  // Different front-end arrays never overlap.
  if (a.array_id != kMayAliasAll && b.array_id != kMayAliasAll && a.array_id != b.array_id)
    return false;
  return rel != AddrRelation::Distinct;
}

}  // namespace ilp
