#include "analysis/reaching.hpp"

#include "ir/reg.hpp"

namespace ilp {

ReachingDefs::ReachingDefs(const Cfg& cfg) : fn_(&cfg.function()), cfg_(&cfg) {
  // Number the definition sites.
  const std::uint32_t maxid =
      std::max(fn_->num_regs(RegClass::Int), fn_->num_regs(RegClass::Fp));
  sites_of_reg_.assign(2 * static_cast<std::size_t>(maxid) + 2, {});
  for (const Block& b : fn_->blocks())
    for (std::size_t i = 0; i < b.insts.size(); ++i) {
      const Instruction& in = b.insts[i];
      if (!in.has_dest()) continue;
      sites_of_reg_[RegKey::key(in.dst)].push_back(sites_.size());
      sites_.push_back(DefSite{b.id, i, in.dst});
    }

  const std::size_t nsites = sites_.size();
  const std::size_t nblocks = fn_->num_blocks();
  in_.assign(nblocks, BitVector(nsites));
  std::vector<BitVector> out(nblocks, BitVector(nsites));

  // gen/kill per block (kill = all sites of regs defined here, minus gen).
  std::vector<BitVector> gen(nblocks, BitVector(nsites));
  std::vector<BitVector> kill(nblocks, BitVector(nsites));
  {
    std::size_t site = 0;
    for (const Block& b : fn_->blocks()) {
      const std::size_t bi = fn_->layout_index(b.id);
      // Forward scan: the last def of each register in the block survives.
      std::vector<std::size_t> block_sites;
      for (const Instruction& in : b.insts) {
        if (!in.has_dest()) continue;
        block_sites.push_back(site++);
      }
      std::size_t cursor = 0;
      std::vector<int> last_for_key(sites_of_reg_.size(), -1);
      for (const Instruction& in : b.insts) {
        if (!in.has_dest()) continue;
        const std::size_t s = block_sites[cursor++];
        last_for_key[RegKey::key(in.dst)] = static_cast<int>(s);
        for (std::size_t other : sites_of_reg_[RegKey::key(in.dst)])
          kill[bi].set(other);
      }
      for (std::size_t key = 0; key < last_for_key.size(); ++key)
        if (last_for_key[key] >= 0)
          gen[bi].set(static_cast<std::size_t>(last_for_key[key]));
      kill[bi].subtract(gen[bi]);
    }
  }

  // Forward fixpoint in reverse postorder.
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : cfg.rpo()) {
      const std::size_t bi = fn_->layout_index(b);
      BitVector newin(nsites);
      for (BlockId p : cfg.preds(b)) newin |= out[fn_->layout_index(p)];
      BitVector newout = newin;
      newout.subtract(kill[bi]);
      newout |= gen[bi];
      if (!(newin == in_[bi]) || !(newout == out[bi])) {
        in_[bi] = std::move(newin);
        out[bi] = std::move(newout);
        changed = true;
      }
    }
  }
}

std::vector<std::size_t> ReachingDefs::reaching_defs_of(BlockId b, std::size_t idx,
                                                        const Reg& r) const {
  const Block& blk = fn_->block(b);
  const std::size_t key = RegKey::key(r);
  // Nearest in-block def before idx wins outright.
  for (std::size_t i = idx; i-- > 0;) {
    if (!blk.insts[i].writes(r)) continue;
    // Identify that site id.
    for (std::size_t s : sites_of_reg_[key])
      if (sites_[s].block == b && sites_[s].index == i) return {s};
  }
  // Otherwise every block-entry reaching def of r.
  std::vector<std::size_t> out;
  for (std::size_t s : sites_of_reg_[key])
    if (reach_in(b).test(s)) out.push_back(s);
  return out;
}

std::vector<UndefinedUse> find_undefined_uses(const Function& fn,
                                              const std::vector<Reg>& inputs) {
  const Cfg cfg(fn);
  const ReachingDefs rd(cfg);
  std::vector<UndefinedUse> out;
  auto is_input = [&](const Reg& r) {
    for (const Reg& i : inputs)
      if (i == r) return true;
    return false;
  };
  for (const Block& b : fn.blocks()) {
    for (std::size_t i = 0; i < b.insts.size(); ++i) {
      const Instruction& in = b.insts[i];
      for (const Reg& u : in.uses()) {
        if (is_input(u)) continue;
        if (rd.reaching_defs_of(b.id, i, u).empty())
          out.push_back(UndefinedUse{b.id, i, u});
      }
    }
  }
  return out;
}

}  // namespace ilp
