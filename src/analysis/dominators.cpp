#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {

Dominators::Dominators(const Cfg& cfg) : fn_(&cfg.function()) {
  const std::size_t n = fn_->num_blocks();
  idom_.assign(n, kNoBlock);

  // Map block -> position in RPO for the intersect walk.
  std::vector<std::size_t> rpo_pos(n, static_cast<std::size_t>(-1));
  const auto& order = cfg.rpo();
  for (std::size_t i = 0; i < order.size(); ++i) rpo_pos[fn_->layout_index(order[i])] = i;

  const BlockId entry = cfg.entry();
  idom_[fn_->layout_index(entry)] = entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_pos[fn_->layout_index(a)] > rpo_pos[fn_->layout_index(b)])
        a = idom_[fn_->layout_index(a)];
      while (rpo_pos[fn_->layout_index(b)] > rpo_pos[fn_->layout_index(a)])
        b = idom_[fn_->layout_index(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : order) {
      if (b == entry) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : cfg.preds(b)) {
        if (idom_[fn_->layout_index(p)] == kNoBlock) continue;  // not yet processed
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom_[fn_->layout_index(b)] != new_idom) {
        idom_[fn_->layout_index(b)] = new_idom;
        changed = true;
      }
    }
  }
}

bool Dominators::dominates(BlockId a, BlockId b) const {
  if (idom_[fn_->layout_index(b)] == kNoBlock) return false;  // b unreachable
  BlockId x = b;
  while (true) {
    if (x == a) return true;
    const BlockId up = idom_[fn_->layout_index(x)];
    if (up == x) return false;  // reached entry
    x = up;
  }
}

}  // namespace ilp
