// Runtime trip-count materialization for counted loops, shared by
// preconditioned unrolling (trans/unroll) and both software pipeliners
// (trans/swp and the modulo scheduling backend in sched/modulo).  Lives in
// the analysis library so the scheduling backend can emit trip counts
// without a trans <-> sched dependency cycle.
#pragma once

#include "analysis/loops.hpp"
#include "ir/function.hpp"

namespace ilp {

// Emits, just before `pre`'s terminator, code computing the loop's remaining
// trip count T = max(1, iterations until `info`'s comparison fails), using
// the do-while convention (the body always runs at least once).  Returns the
// register holding T.
Reg emit_trip_count(Function& fn, BlockId pre, const CountedLoopInfo& info);

}  // namespace ilp
