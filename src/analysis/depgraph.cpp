#include "analysis/depgraph.hpp"

#include <algorithm>

#include "analysis/addresses.hpp"
#include "support/assert.hpp"

namespace ilp {

// Construction is built to be allocation-light and linear-ish; the profile of
// the original implementation was dominated not by the O(n^2) scans but by
// per-node adjacency vectors (4 heap vectors per instruction) and node-based
// hashing in the duplicate-edge check.  Hence:
//   * edges are collected into one flat vector, deduplicated through an
//     open-addressed (from,to) index; adjacency is materialized once at the
//     end in compressed-sparse-row form (finalize());
//   * register dependences track last-def and uses-since-def per register in
//     dense RegKey-indexed arrays, with the use lists pooled in a single
//     vector threaded as linked lists;
//   * memory dependences come from last-store/loads-since-store tracking per
//     disambiguation class (array, root, displacement) instead of the
//     all-pairs scan.  The emitted edges are a subset of the all-pairs edges
//     whose transitive closure carries at least the same latency along every
//     removed pair, so critical-path heights and list schedules are
//     unchanged (tests/sched/scheduler_diff_test.cpp proves this against the
//     retained all-pairs reference);
//   * control edges iterate only candidate instructions (stores and defs of
//     registers live at the branch target) instead of all n per branch, and
//     read the target live-in set by reference.

void DepGraph::add_edge(std::uint32_t from, std::uint32_t to, int latency, DepKind kind) {
  ILP_ASSERT(from < to, "dependence edges must follow program order");
  // Collapse duplicates, keeping the max latency (first edge keeps its kind).
  const auto key =
      static_cast<std::int64_t>((static_cast<std::uint64_t>(from) << 32) | to);
  const auto [slot, inserted] = edge_index_.try_emplace(key, edges_.size());
  if (!inserted) {
    DepEdge& e = edges_[*slot];
    e.latency = std::max(e.latency, latency);
    return;
  }
  edges_.push_back(DepEdge{from, to, latency, kind});
}

void DepGraph::finalize() {
  const auto ne = static_cast<std::uint32_t>(edges_.size());
  out_off_.assign(n_ + 1, 0);
  in_off_.assign(n_ + 1, 0);
  for (const DepEdge& e : edges_) {
    ++out_off_[e.from + 1];
    ++in_off_[e.to + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) {
    out_off_[i] += out_off_[i - 1];
    in_off_[i] += in_off_[i - 1];
  }
  out_nodes_.resize(ne);
  out_eids_.resize(ne);
  in_nodes_.resize(ne);
  in_eids_.resize(ne);
  std::vector<std::uint32_t> out_cur(out_off_.begin(), out_off_.end() - 1);
  std::vector<std::uint32_t> in_cur(in_off_.begin(), in_off_.end() - 1);
  for (std::uint32_t ei = 0; ei < ne; ++ei) {
    const DepEdge& e = edges_[ei];
    const std::uint32_t o = out_cur[e.from]++;
    out_nodes_[o] = e.to;
    out_eids_[o] = ei;
    const std::uint32_t p = in_cur[e.to]++;
    in_nodes_[p] = e.from;
    in_eids_[p] = ei;
  }

  // Critical-path heights (longest latency path to any sink); edges always
  // point forward in program order, so a reverse sweep is topological.
  height_.assign(n_, 0);
  for (std::size_t i = n_; i-- > 0;) {
    int h = 0;
    for (std::uint32_t ei : out_edges(i)) {
      const DepEdge& e = edges_[ei];
      h = std::max(h, e.latency + height_[e.to]);
    }
    height_[i] = h;
  }
}

namespace {

// Memory ops sharing (array id, address root, displacement) — the unit of
// disambiguation: ops in one class always alias, classes with the same root
// but different displacements are provably distinct, and classes with
// different roots may alias when their arrays are compatible.
struct MemClass {
  std::int32_t array_id = kMayAliasAll;
  std::int32_t root = -1;
  std::int64_t disp = 0;
  std::int32_t last_store = -1;            // instruction index, -1 = none yet
  std::vector<std::uint32_t> loads_since;  // loads after last_store
};

bool arrays_compatible(std::int32_t a, std::int32_t b) {
  return a == kMayAliasAll || b == kMayAliasAll || a == b;
}

}  // namespace

DepGraph::DepGraph(const Function& fn, BlockId block, const MachineModel& machine,
                   const Liveness& liveness, BlockId preheader) {
  const Block& blk = fn.block(block);
  n_ = blk.insts.size();
  edges_.reserve(n_ * 4);
  edge_index_.reserve(n_ * 4);

  // ---- Register dependences: last def and uses-since-last-def per register,
  // in dense RegKey-indexed tables (no hashing in the inner loop).  The use
  // lists live in one pooled vector threaded as per-key linked lists; each
  // entry is visited at most once when the next def of its key walks the
  // chain, so the pass is linear in uses.
  const std::size_t nkeys = liveness.universe_size();
  std::vector<std::int32_t> last_def(nkeys, -1);
  std::vector<std::int32_t> use_head(nkeys, -1);  // newest-first chains
  struct UseEntry {
    std::uint32_t inst;
    std::int32_t next;
  };
  std::vector<UseEntry> use_pool;
  use_pool.reserve(2 * n_);

  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = blk.insts[i];
    const auto use = [&](const Reg& u) {
      const std::size_t k = RegKey::key(u);
      if (last_def[k] >= 0)
        add_edge(static_cast<std::uint32_t>(last_def[k]), i,
                 machine.latency(blk.insts[static_cast<std::size_t>(last_def[k])].op),
                 DepKind::Flow);
      use_pool.push_back(UseEntry{i, use_head[k]});
      use_head[k] = static_cast<std::int32_t>(use_pool.size() - 1);
    };
    if (in.src1.valid()) use(in.src1);
    if (in.src2.valid() && !in.src2_is_imm) use(in.src2);
    if (in.has_dest()) {
      const std::size_t k = RegKey::key(in.dst);
      if (last_def[k] >= 0)
        add_edge(static_cast<std::uint32_t>(last_def[k]), i, 0, DepKind::Output);
      for (std::int32_t u = use_head[k]; u >= 0; u = use_pool[u].next)
        if (use_pool[u].inst != i) add_edge(use_pool[u].inst, i, 0, DepKind::Anti);
      last_def[k] = static_cast<std::int32_t>(i);
      use_head[k] = -1;
      // The def instruction itself may also read dst (e.g. r1 = r1 + 4);
      // its read was of the old value, already handled above.
    }
  }

  // ---- Memory dependences with symbolic-address disambiguation.
  //
  // For each memory op, edges are drawn from the last store (and, for
  // stores, the loads since that store) of every class it may alias: its own
  // exact-location class plus every class under a different root with a
  // compatible array.  Older ops of those classes are already ordered behind
  // the class's last store by earlier edges, so the all-pairs constraints
  // survive transitively with identical path latencies.
  const BlockAddresses addrs(fn, block, preheader);
  std::vector<MemClass> classes;
  // Classes are threaded through two intrusive lists (no per-bucket vectors):
  //   * loc_index/loc_next buckets classes by hashed (root, disp) for the
  //     exact-location lookup.  A hash collision merges buckets, which only
  //     adds visits — every emitted edge is still guarded by may_alias, and
  //     class registration compares all three fields exactly;
  //   * array_head/arr_next groups classes by array id (slot 0 holds the
  //     kMayAliasAll wildcard group) for the cross-root scan.
  std::vector<std::int32_t> loc_next;
  std::vector<std::int32_t> arr_next;
  std::vector<std::int32_t> array_head(fn.arrays().size() + 1, -1);
  FlatHashMap64 loc_index;
  const auto group_of = [](std::int32_t array_id) {
    return array_id == kMayAliasAll ? std::size_t{0}
                                    : static_cast<std::size_t>(array_id) + 1;
  };
  const auto loc_key = [](const SymAddr& a) {
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.root)) << 32) ^
        static_cast<std::uint64_t>(a.disp * 0x9e3779b97f4a7c15ull));
  };

  for (std::uint32_t j = 0; j < n_; ++j) {
    const Instruction& y = blk.insts[j];
    if (!y.is_memory()) continue;
    const SymAddr aj = addrs.address_of(j);
    const bool is_store = y.is_store();

    const auto visit_class = [&](MemClass& c) {
      if (c.last_store >= 0) {
        const std::uint32_t i = static_cast<std::uint32_t>(c.last_store);
        const Instruction& x = blk.insts[i];
        if (may_alias(x, y, addrs.relation(i, j))) {
          if (is_store)
            add_edge(i, j, 0, DepKind::MemOut);
          else
            add_edge(i, j, machine.latency(x.op), DepKind::MemFlow);
        }
      }
      if (is_store) {
        for (std::uint32_t l : c.loads_since)
          if (may_alias(blk.insts[l], y, addrs.relation(l, j)))
            add_edge(l, j, 0, DepKind::MemAnti);
      }
    };

    // Same-root aliasing is exact-location only: classes at (root, disp).
    const std::int64_t lk = loc_key(aj);
    if (const std::uint64_t* head = loc_index.find(lk))
      for (auto ci = static_cast<std::int32_t>(*head); ci >= 0; ci = loc_next[ci])
        if (arrays_compatible(classes[ci].array_id, y.array_id))
          visit_class(classes[ci]);
    // Cross-root classes may alias whenever the arrays are compatible.
    const auto scan_array_group = [&](std::size_t gi) {
      for (std::int32_t ci = array_head[gi]; ci >= 0; ci = arr_next[ci])
        if (classes[ci].root != aj.root) visit_class(classes[ci]);
    };
    if (y.array_id == kMayAliasAll) {
      for (std::size_t gi = 0; gi < array_head.size(); ++gi) scan_array_group(gi);
    } else {
      scan_array_group(group_of(y.array_id));
      scan_array_group(0);  // wildcard group
    }

    // Record this op in its own class (exact three-field match within the
    // location bucket; create and push-front if absent).
    const auto [slot, inserted] =
        loc_index.try_emplace(lk, static_cast<std::uint64_t>(-1));
    std::int32_t own_id = -1;
    if (!inserted)
      for (auto ci = static_cast<std::int32_t>(*slot); ci >= 0; ci = loc_next[ci])
        if (classes[ci].array_id == y.array_id && classes[ci].root == aj.root &&
            classes[ci].disp == aj.disp) {
          own_id = ci;
          break;
        }
    if (own_id < 0) {
      own_id = static_cast<std::int32_t>(classes.size());
      classes.push_back(MemClass{y.array_id, aj.root, aj.disp, -1, {}});
      loc_next.push_back(inserted ? -1 : static_cast<std::int32_t>(*slot));
      *slot = static_cast<std::uint64_t>(own_id);
      const std::size_t gi = group_of(y.array_id);
      arr_next.push_back(array_head[gi]);
      array_head[gi] = own_id;
    }
    MemClass& own = classes[own_id];
    if (is_store) {
      own.last_store = static_cast<std::int32_t>(j);
      own.loads_since.clear();
    } else {
      own.loads_since.push_back(j);
    }
  }

  // ---- Control (superblock-discipline) edges.  Candidates (stores, defs of
  // each register) are pre-indexed once; def lists reuse the linked-list pool
  // trick keyed by RegKey.
  std::vector<std::uint32_t> branches;
  std::vector<std::uint32_t> stores;
  std::vector<std::int32_t> def_head;
  struct DefEntry {
    std::uint32_t inst;
    std::int32_t next;
  };
  std::vector<DefEntry> def_pool;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = blk.insts[i];
    if (in.is_control()) {
      branches.push_back(i);
      continue;
    }
    if (in.is_store()) stores.push_back(i);
    if (in.has_dest()) {
      if (def_head.empty()) def_head.assign(nkeys, -1);
      const std::size_t k = RegKey::key(in.dst);
      def_pool.push_back(DefEntry{i, def_head[k]});
      def_head[k] = static_cast<std::int32_t>(def_pool.size() - 1);
    }
  }

  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    const std::uint32_t br = branches[bi];
    if (bi + 1 < branches.size()) add_edge(br, branches[bi + 1], 0, DepKind::Control);

    const Instruction& brin = blk.insts[br];
    const bool is_terminator = (br + 1 == n_) || brin.op == Opcode::JUMP ||
                               brin.op == Opcode::RET;
    const BitVector* target_live =
        (brin.is_branch() || brin.op == Opcode::JUMP) ? &liveness.live_in(brin.target)
                                                      : nullptr;

    // Stores must stay above the branch (the exit path must see them) and
    // below it (they must not execute if the branch leaves).
    for (std::uint32_t s : stores)
      add_edge(std::min(s, br), std::max(s, br), 0, DepKind::Control);
    // Defs of registers live at the target neither hoist above the branch
    // (would clobber the off-trace value) nor sink below it from above (the
    // exit path needs them).
    if (target_live != nullptr && !def_head.empty()) {
      target_live->for_each_set([&](std::size_t k) {
        for (std::int32_t d = def_head[k]; d >= 0; d = def_pool[d].next)
          add_edge(std::min(def_pool[d].inst, br), std::max(def_pool[d].inst, br), 0,
                   DepKind::Control);
      });
    }
    // Nothing moves below the block-terminating branch/jump.
    if (is_terminator)
      for (std::uint32_t i = 0; i < br; ++i)
        if (!blk.insts[i].is_control()) add_edge(i, br, 0, DepKind::Control);
  }

  finalize();
}

}  // namespace ilp
