#include "analysis/depgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/addresses.hpp"
#include "support/assert.hpp"

namespace ilp {

void DepGraph::add_edge(std::uint32_t from, std::uint32_t to, int latency, DepKind kind) {
  ILP_ASSERT(from < to, "dependence edges must follow program order");
  // Collapse duplicates, keeping the max latency.
  for (std::uint32_t ei : out_edges_[from]) {
    if (edges_[ei].to == to) {
      edges_[ei].latency = std::max(edges_[ei].latency, latency);
      return;
    }
  }
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DepEdge{from, to, latency, kind});
  succs_[from].push_back(to);
  preds_[to].push_back(from);
  out_edges_[from].push_back(idx);
  in_edges_[to].push_back(idx);
}

DepGraph::DepGraph(const Function& fn, BlockId block, const MachineModel& machine,
                   const Liveness& liveness, BlockId preheader) {
  const Block& blk = fn.block(block);
  n_ = blk.insts.size();
  preds_.resize(n_);
  succs_.resize(n_);
  in_edges_.resize(n_);
  out_edges_.resize(n_);

  // ---- Register dependences: last def and uses-since-last-def per register.
  std::unordered_map<Reg, std::uint32_t, RegHash> last_def;
  std::unordered_map<Reg, std::vector<std::uint32_t>, RegHash> uses_since_def;

  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = blk.insts[i];
    for (const Reg& u : in.uses()) {
      const auto d = last_def.find(u);
      if (d != last_def.end())
        add_edge(d->second, i, machine.latency(blk.insts[d->second].op), DepKind::Flow);
      uses_since_def[u].push_back(i);
    }
    if (in.has_dest()) {
      const auto d = last_def.find(in.dst);
      if (d != last_def.end()) add_edge(d->second, i, 0, DepKind::Output);
      for (std::uint32_t u : uses_since_def[in.dst])
        if (u != i) add_edge(u, i, 0, DepKind::Anti);
      last_def[in.dst] = i;
      uses_since_def[in.dst].clear();
      // The def instruction itself may also read dst (e.g. r1 = r1 + 4);
      // record it as a use of the *new* value? No: its read was of the old
      // value, already handled above.  Nothing more to do.
    }
  }

  // ---- Memory dependences with symbolic-address disambiguation.
  const BlockAddresses addrs(fn, block, preheader);
  std::vector<std::uint32_t> mem_ops;
  for (std::uint32_t i = 0; i < n_; ++i)
    if (blk.insts[i].is_memory()) mem_ops.push_back(i);
  for (std::size_t a = 0; a < mem_ops.size(); ++a) {
    for (std::size_t b = a + 1; b < mem_ops.size(); ++b) {
      const std::uint32_t i = mem_ops[a];
      const std::uint32_t j = mem_ops[b];
      const Instruction& x = blk.insts[i];
      const Instruction& y = blk.insts[j];
      if (x.is_load() && y.is_load()) continue;
      if (!may_alias(x, y, addrs.relation(i, j))) continue;
      if (x.is_store() && y.is_load())
        add_edge(i, j, machine.latency(x.op), DepKind::MemFlow);
      else if (x.is_load() && y.is_store())
        add_edge(i, j, 0, DepKind::MemAnti);
      else
        add_edge(i, j, 0, DepKind::MemOut);
    }
  }

  // ---- Control (superblock-discipline) edges.
  std::vector<std::uint32_t> branches;
  for (std::uint32_t i = 0; i < n_; ++i)
    if (blk.insts[i].is_control()) branches.push_back(i);

  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    const std::uint32_t br = branches[bi];
    if (bi + 1 < branches.size()) add_edge(br, branches[bi + 1], 0, DepKind::Control);

    const Instruction& brin = blk.insts[br];
    const bool is_terminator = (br + 1 == n_) || brin.op == Opcode::JUMP ||
                               brin.op == Opcode::RET;
    BitVector target_live;
    if (brin.is_branch() || brin.op == Opcode::JUMP)
      target_live = liveness.live_in(brin.target);

    for (std::uint32_t i = 0; i < n_; ++i) {
      if (i == br || blk.insts[i].is_control()) continue;
      const Instruction& in = blk.insts[i];
      const bool writes_live_at_target =
          in.has_dest() && target_live.size() > 0 && target_live.test(RegKey::key(in.dst));
      if (i < br) {
        // Must stay above the branch: stores (exit path must see them) and
        // defs of registers live at the target.
        if (in.is_store() || writes_live_at_target) add_edge(i, br, 0, DepKind::Control);
        if (is_terminator) add_edge(i, br, 0, DepKind::Control);
      } else {
        // Must stay below: stores (must not execute if the branch leaves) and
        // defs that would clobber the target's live values.
        if (in.is_store() || writes_live_at_target) add_edge(br, i, 0, DepKind::Control);
      }
    }
  }

  // ---- Critical-path heights (longest latency path to any sink).
  height_.assign(n_, 0);
  for (std::size_t i = n_; i-- > 0;) {
    int h = 0;
    for (std::uint32_t ei : out_edges_[i])
      h = std::max(h, edges_[ei].latency + height_[edges_[ei].to]);
    height_[i] = h;
  }
}

}  // namespace ilp
