#include "engine/pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilp::engine {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::submit after shutdown");
    queue_.push_back(std::move(job));
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  work_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();  // packaged_task: exceptions land in the future, not here
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++executed_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

std::size_t ThreadPool::jobs_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

std::size_t ThreadPool::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

}  // namespace ilp::engine
