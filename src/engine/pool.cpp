#include "engine/pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace ilp::engine {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  local_.resize(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(int worker, std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::submit after shutdown");
    std::size_t depth = queue_.size();
    if (worker == kAnyWorker) {
      queue_.push_back(std::move(job));
      ++depth;
    } else {
      local_[static_cast<std::size_t>(worker)].push_back(std::move(job));
    }
    for (const auto& q : local_) depth += q.size();
    peak_depth_ = std::max(peak_depth_, depth);
  }
  // A pinned job can only run on its owner, so every waiter must re-check
  // its own predicate — notify_one could wake the wrong worker and lose the
  // wakeup.  The shared queue is claimable by anyone; one waker suffices.
  if (worker == kAnyWorker)
    work_cv_.notify_one();
  else
    work_cv_.notify_all();
}

void ThreadPool::worker_loop(unsigned index) {
  std::deque<std::function<void()>>& mine = local_[index];
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, &mine] {
        return stop_ || !queue_.empty() || !mine.empty();
      });
      if (queue_.empty() && mine.empty()) return;  // stop_ set and drained
      // Local (pinned) work first: it was routed here for cache affinity.
      if (!mine.empty()) {
        job = std::move(mine.front());
        mine.pop_front();
      } else {
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      ++active_;
    }
    job();  // packaged_task: exceptions land in the future, not here
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++executed_;
      if (active_ == 0 && queue_.empty() &&
          std::all_of(local_.begin(), local_.end(),
                      [](const auto& q) { return q.empty(); }))
        idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return active_ == 0 && queue_.empty() &&
           std::all_of(local_.begin(), local_.end(),
                       [](const auto& q) { return q.empty(); });
  });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

std::size_t ThreadPool::jobs_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

std::size_t ThreadPool::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t depth = queue_.size();
  for (const auto& q : local_) depth += q.size();
  return depth;
}

std::size_t ThreadPool::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

}  // namespace ilp::engine
