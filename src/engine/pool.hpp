// Thread pool for the parallel experiment engine.
//
// The paper's methodology (Section 3.1) is an embarrassingly parallel sweep:
// 40 loop nests x 5 levels x 4 issue widths = 800 independent
// compile+schedule+simulate jobs.  This pool runs them on N worker threads
// behind a futures-style submit() API:
//
//   * submit(f) returns a std::future for f's result; exceptions thrown by
//     the job are captured in the future and rethrown at get(), never
//     aborting the pool or sibling jobs.
//   * Destruction / shutdown() is graceful: already-queued jobs drain before
//     the workers join, so no submitted work is silently dropped.
//   * Queue depth and executed-job counts are tracked for the telemetry
//     layer (engine/metrics.hpp).
//
// Determinism contract: the pool itself promises nothing about execution
// order.  Callers that need byte-identical output (the harness does — see
// run_study) must aggregate results by submission index, not completion
// order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ilp::engine {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a nullary callable; returns a future for its result.  Throws
  // std::runtime_error if the pool has been shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  // Blocks until every queued and running job has finished.
  void wait_idle();

  // Drains the queue, joins all workers.  Idempotent; called by ~ThreadPool.
  void shutdown();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }
  [[nodiscard]] std::size_t jobs_executed() const;
  [[nodiscard]] std::size_t peak_queue_depth() const;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;            // jobs currently executing
  std::size_t executed_ = 0;
  std::size_t peak_depth_ = 0;
  bool stop_ = false;
};

}  // namespace ilp::engine
