// Thread pool for the parallel experiment engine.
//
// The paper's methodology (Section 3.1) is an embarrassingly parallel sweep:
// 40 loop nests x 5 levels x 4 issue widths = 800 independent
// compile+schedule+simulate jobs.  This pool runs them on N worker threads
// behind a futures-style submit() API:
//
//   * submit(f) returns a std::future for f's result; exceptions thrown by
//     the job are captured in the future and rethrown at get(), never
//     aborting the pool or sibling jobs.
//   * Destruction / shutdown() is graceful: already-queued jobs drain before
//     the workers join, so no submitted work is silently dropped.
//   * Queue depth and executed-job counts are tracked for the telemetry
//     layer (engine/metrics.hpp).
//
// Determinism contract: the pool itself promises nothing about execution
// order.  Callers that need byte-identical output (the harness does — see
// run_study) must aggregate results by submission index, not completion
// order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ilp::engine {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a nullary callable; returns a future for its result.  Throws
  // std::runtime_error if the pool has been shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue(kAnyWorker, [task]() { (*task)(); });
    return fut;
  }

  // Shard-aware submission: the job lands on worker `worker % size()`'s
  // local queue and is executed by that worker only.  Jobs keyed by the
  // same shard therefore share one thread's caches (the sharded service
  // pins each cell to the worker owning its cache partition).  Ordering
  // between a worker's local queue and the shared queue is unspecified;
  // pinned jobs never migrate.
  template <typename F>
  auto submit_pinned(unsigned worker, F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue(static_cast<int>(worker % size()), [task]() { (*task)(); });
    return fut;
  }

  // Blocks until every queued and running job has finished.
  void wait_idle();

  // Drains the queue, joins all workers.  Idempotent; called by ~ThreadPool.
  void shutdown();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }
  [[nodiscard]] std::size_t jobs_executed() const;
  [[nodiscard]] std::size_t peak_queue_depth() const;
  // Instantaneous gauges for the metrics layer.
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t active_jobs() const;

 private:
  static constexpr int kAnyWorker = -1;
  void enqueue(int worker, std::function<void()> job);
  void worker_loop(unsigned index);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::deque<std::function<void()>>> local_;  // per-worker pinned jobs
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;            // jobs currently executing
  std::size_t executed_ = 0;
  std::size_t peak_depth_ = 0;
  bool stop_ = false;
};

// Thrown into the future of a group job whose group was cancelled before the
// job started executing.  Jobs already running are never interrupted.
struct JobCancelled : std::runtime_error {
  JobCancelled() : std::runtime_error("job cancelled before start") {}
};

// A set of related pool jobs that can be awaited and cancelled as one unit
// (a `batch` service request, the cells behind one deadline).  Cancellation
// is cooperative and start-gated: cancel() marks the group, and every member
// that has not yet begun executing completes immediately with JobCancelled in
// its future instead of running.  wait() returns once every member has
// settled — run to completion, thrown, or been cancelled at start.
//
// The group holds no reference back to the pool's queue; cancelled members
// still pass through a worker as a cheap no-op, so group lifetime may not
// exceed the pool's.
class JobGroup {
 public:
  explicit JobGroup(ThreadPool& pool)
      : pool_(pool), state_(std::make_shared<State>()) {}

  JobGroup(const JobGroup&) = delete;
  JobGroup& operator=(const JobGroup&) = delete;

  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    return pool_.submit(wrap(std::forward<F>(f)));
  }

  // Pinned member: same cancellation semantics, but the job runs on pool
  // worker `worker % size()` only (ThreadPool::submit_pinned).
  template <typename F>
  auto submit_pinned(unsigned worker, F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    return pool_.submit_pinned(worker, wrap(std::forward<F>(f)));
  }

  // Marks the group: members not yet started settle with JobCancelled.
  void cancel() { state_->cancelled.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  // Blocks until every submitted member has settled.
  void wait() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->outstanding == 0; });
  }

  // Members that settled via cancellation rather than execution.
  [[nodiscard]] std::size_t cancelled_jobs() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->cancelled_jobs;
  }

 private:
  // Registers one outstanding member and returns the start-gated wrapper the
  // pool actually runs (shared by submit and submit_pinned).
  template <typename F>
  auto wrap(F&& f) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->outstanding;
    }
    auto st = state_;
    return [st, g = std::forward<F>(f)]() mutable {
      Settle settle(st);
      if (st->cancelled.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> lock(st->mu);
          ++st->cancelled_jobs;
        }
        throw JobCancelled();
      }
      return g();
    };
  }

  struct State {
    std::atomic<bool> cancelled{false};
    mutable std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    std::size_t cancelled_jobs = 0;
  };
  // RAII member settlement: runs on normal return, job exception, and the
  // cancelled-at-start throw alike.
  struct Settle {
    explicit Settle(std::shared_ptr<State> st) : st_(std::move(st)) {}
    ~Settle() {
      std::lock_guard<std::mutex> lock(st_->mu);
      if (--st_->outstanding == 0) st_->cv.notify_all();
    }
    std::shared_ptr<State> st_;
  };

  ThreadPool& pool_;
  std::shared_ptr<State> state_;
};

}  // namespace ilp::engine
