#include "engine/trace.hpp"

#include <cstdio>
#include <fstream>

namespace ilp::engine {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder rec;
  return rec;
}

void TraceRecorder::enable() { enabled_.store(true, std::memory_order_relaxed); }
void TraceRecorder::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceRecorder::dense_tid_locked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto next = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, next);
  return next;
}

void TraceRecorder::record(std::string_view name, std::string_view category,
                           std::uint64_t ts_us, std::uint64_t dur_us) {
  record_span(name, category, ts_us, dur_us, {});
}

void TraceRecorder::record_span(std::string_view name, std::string_view category,
                                std::uint64_t ts_us, std::uint64_t dur_us,
                                std::string_view request_id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::string(name), std::string(category),
                               std::string(request_id), ts_us, dur_us,
                               dense_tid_locked(std::this_thread::get_id())});
}

void TraceRecorder::record_issue_slot(std::string_view op_name, std::uint64_t cycle,
                                      int slot, std::string_view request_id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::string(op_name), "issue_slot",
                               std::string(request_id), cycle, 1,
                               kIssueSlotLaneBase + static_cast<std::uint32_t>(slot)});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    char args[160] = "";
    if (!e.request_id.empty())
      std::snprintf(args, sizeof args, ", \"args\": {\"request_id\": \"%s\"}",
                    e.request_id.c_str());
    char line[768];
    std::snprintf(line, sizeof line,
                  "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                  "\"tid\": %u, \"ts\": %llu, \"dur\": %llu%s}%s\n",
                  e.name.c_str(), e.category.c_str(), e.tid,
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), args,
                  i + 1 < events_.size() ? "," : "");
    out << line;
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tids_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace ilp::engine
