// Telemetry counters, timers and latency histograms for the engine.
//
// A process-wide MetricsRegistry accumulates named statistics from any
// thread: pass wall times (hooked into compile_at_level via ScopedTimer),
// per-job durations, cache hit/miss counters, transformation counters, and
// log-bucketed latency histograms (obs/histogram.hpp) for the serving layer.
// Snapshots are name-sorted so exported JSON is deterministic for a given
// set of values; the *values* are wall-clock measurements and therefore
// intentionally live outside the deterministic study JSON
// (StudyResult::to_json) — they are exported separately (telemetry_json,
// --metrics, and ilpd's `metrics` verb).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace ilp::engine {

struct MetricStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // 0 for pure counters

  [[nodiscard]] double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  [[nodiscard]] double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / 1e3 / static_cast<double>(count);
  }
};

class MetricsRegistry {
 public:
  // The process-wide registry used by the pass-timing hooks.
  static MetricsRegistry& global();

  // Adds one timed sample (count += 1, total_ns += ns).
  void add_time(std::string_view name, std::uint64_t ns);
  // Adds to a pure counter.
  void add_count(std::string_view name, std::uint64_t delta = 1);
  // High-water gauge: keeps the maximum value ever recorded under `name`.
  void record_max(std::string_view name, std::uint64_t value);

  // The histogram registered under `name`, created on first use.  The
  // reference stays valid for the registry's lifetime (reset() zeroes
  // histograms instead of destroying them), so callers may cache it and
  // record lock-free.
  obs::Histogram& histogram(std::string_view name);
  void record_hist(std::string_view name, std::uint64_t value) {
    histogram(name).record(value);
  }

  // Copies `name` into a process-lifetime intern table and returns a view of
  // the stable storage.  For ScopedTimer names built at runtime; literal
  // names don't need it.
  static std::string_view intern_name(std::string_view name);

  // Name-sorted snapshots.
  [[nodiscard]] std::vector<std::pair<std::string, MetricStat>> snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> gauge_snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, obs::Histogram::Snapshot>>
  hist_snapshot() const;
  [[nodiscard]] std::string to_json(int indent = 0) const;
  // Prometheus text exposition of every stat (counter/timer) and histogram.
  // Timers expose <name>_count + <name>_seconds_total; histograms are
  // nanosecond-recorded and exposed in seconds.
  [[nodiscard]] std::string to_prometheus() const;
  void reset();

 private:
  mutable std::mutex mu_;
  // std::map for heterogeneous (allocation-free) string_view lookup and
  // naturally sorted snapshots; the registry holds tens of entries.
  std::map<std::string, MetricStat, std::less<>> stats_;
  std::map<std::string, std::uint64_t, std::less<>> gauges_;  // max-hold
  std::map<std::string, std::unique_ptr<obs::Histogram>, std::less<>> hists_;
};

// Times a scope and records it into a registry (the global one by default).
// Used inside compile_at_level for per-pass wall times: the names form the
// "pass.<name>" namespace of the telemetry output.
//
// The name is held as a string_view — no copy, no allocation on the hot
// path — so it must outlive the scope: pass a string literal or a view
// interned via MetricsRegistry::intern_name().
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       MetricsRegistry& reg = MetricsRegistry::global())
      : reg_(reg), name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    reg_.add_time(name_, static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry& reg_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

// Monotonic wall-clock helper for coarse phase timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] std::uint64_t micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  [[nodiscard]] std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ilp::engine
