// Telemetry counters and timers for the experiment engine.
//
// A process-wide MetricsRegistry accumulates named statistics from any
// thread: pass wall times (hooked into compile_at_level via ScopedPassTimer),
// per-job durations, cache hit/miss counters, queue depths.  Snapshots are
// name-sorted so exported JSON is deterministic for a given set of values;
// the *values* are wall-clock measurements and therefore intentionally live
// outside the deterministic study JSON (StudyResult::to_json) — they are
// exported separately (telemetry_json, --metrics).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ilp::engine {

struct MetricStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // 0 for pure counters

  [[nodiscard]] double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  [[nodiscard]] double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / 1e3 / static_cast<double>(count);
  }
};

class MetricsRegistry {
 public:
  // The process-wide registry used by the pass-timing hooks.
  static MetricsRegistry& global();

  // Adds one timed sample (count += 1, total_ns += ns).
  void add_time(std::string_view name, std::uint64_t ns);
  // Adds to a pure counter.
  void add_count(std::string_view name, std::uint64_t delta = 1);

  // Name-sorted snapshot.
  [[nodiscard]] std::vector<std::pair<std::string, MetricStat>> snapshot() const;
  [[nodiscard]] std::string to_json(int indent = 0) const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, MetricStat> stats_;
};

// Times a scope and records it into a registry (the global one by default).
// Used inside compile_at_level for per-pass wall times: the names form the
// "pass.<name>" namespace of the telemetry output.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       MetricsRegistry& reg = MetricsRegistry::global())
      : reg_(reg), name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    reg_.add_time(name_, static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry& reg_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// Monotonic wall-clock helper for coarse phase timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] std::uint64_t micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ilp::engine
