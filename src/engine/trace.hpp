// Chrome-trace event recorder for the experiment engine.
//
// When enabled, each study job (and any other instrumented scope) records a
// complete "X"-phase event; write_chrome_trace() emits the JSON array format
// that chrome://tracing, Perfetto and speedscope all load directly, giving a
// flamegraph of how the 800 study cells packed onto the worker threads.
//
// Recording is off by default and costs one atomic load per scope when off.
// Thread ids are remapped to small dense integers in first-seen order so the
// trace rows read "worker 0..N-1" rather than opaque pthread handles.
//
// The recorder also implements obs::TraceSink, which is how request-scoped
// tracing works in ilpd: the service builds a private TraceRecorder per
// traced request, installs it in the request's obs::RequestContext, and the
// obs::SpanScope instrumentation in the service, engine job and compiler
// passes routes request/job/pass spans — all tagged with the request id —
// into that recorder, which is then written out as one Chrome trace file.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/context.hpp"

namespace ilp::engine {

struct TraceEvent {
  std::string name;
  std::string category;
  std::string request_id;    // empty outside request-scoped tracing
  std::uint64_t ts_us = 0;   // start, microseconds since recorder epoch
  std::uint64_t dur_us = 0;  // duration, microseconds
  std::uint32_t tid = 0;     // dense thread id
};

class TraceRecorder : public obs::TraceSink {
 public:
  // A fresh recorder (per-request tracing); starts disabled.
  TraceRecorder();
  static TraceRecorder& global();

  void enable();
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the recorder's epoch (set at construction/reset).
  [[nodiscard]] std::uint64_t now_us() const override;

  // Records a complete event; no-op when disabled.
  void record(std::string_view name, std::string_view category, std::uint64_t ts_us,
              std::uint64_t dur_us);
  // obs::TraceSink: same, with the request id attached as an event arg.
  void record_span(std::string_view name, std::string_view category,
                   std::uint64_t ts_us, std::uint64_t dur_us,
                   std::string_view request_id) override;
  // obs::TraceSink: simulated issue slots become per-lane "issue_slot"
  // events — lane tid kIssueSlotLaneBase + slot, one simulated cycle mapped
  // to one trace microsecond — so Chrome/Perfetto render the issue window as
  // `issue_width` parallel rows under the wall-clock span rows.
  void record_issue_slot(std::string_view op_name, std::uint64_t cycle, int slot,
                         std::string_view request_id) override;

  // Synthetic tid of issue-slot lane 0; real threads get dense ids from 0 so
  // the gap keeps the two row families visually separate.
  static constexpr std::uint32_t kIssueSlotLaneBase = 1000;

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;
  // Writes the Chrome trace JSON; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;
  void reset();

 private:
  std::uint32_t dense_tid_locked(std::thread::id id);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII scope: measures [construction, destruction) and records it.
class TraceScope {
 public:
  TraceScope(std::string_view name, std::string_view category,
             TraceRecorder& rec = TraceRecorder::global())
      : rec_(rec), active_(rec.enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      start_us_ = rec_.now_us();
    }
  }
  ~TraceScope() {
    if (active_) rec_.record(name_, category_, start_us_, rec_.now_us() - start_us_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder& rec_;
  bool active_;
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
};

}  // namespace ilp::engine
