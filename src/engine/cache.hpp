// Content-addressed result cache for the experiment engine.
//
// Every (workload source, transformation level, machine configuration,
// compile options) cell of the study is deterministic: same inputs, same
// cycles and register counts.  The cache exploits that with two tiers:
//
//   * an in-memory map, shared by all jobs of a process (thread-safe), and
//   * an optional on-disk tier (one small text file per key under a caller
//     supplied directory, `--cache-dir` in the benches), which makes re-runs
//     of unchanged cells near-free *across* bench binaries and processes.
//
// Keys are 64-bit FNV-1a digests of the full key material, built with
// HashStream so every field is length-delimited (no concatenation
// ambiguity).  Payloads are opaque strings; the harness owns their schema
// and embeds a format version so stale disk entries are ignored, not
// misread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include <mutex>

namespace ilp::engine {

// --- FNV-1a ----------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t n,
                                  std::uint64_t seed = kFnvOffsetBasis);

// Incremental, field-delimited hasher: each value is prefixed with its
// length (or a fixed-width tag), so ("ab","c") and ("a","bc") differ.
class HashStream {
 public:
  HashStream& bytes(const void* data, std::size_t n);
  HashStream& str(std::string_view s);
  HashStream& u64(std::uint64_t v);
  HashStream& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  HashStream& i32(std::int32_t v) { return u64(static_cast<std::uint64_t>(v)); }
  HashStream& boolean(bool v) { return u64(v ? 1 : 0); }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffsetBasis;
};

// --- Result cache ----------------------------------------------------------

struct CacheStats {
  std::uint64_t hits = 0;       // in-memory hits
  std::uint64_t disk_hits = 0;  // misses served from the disk tier
  std::uint64_t misses = 0;     // full misses (caller must compute)
  std::uint64_t invalid = 0;    // hits whose payload the caller rejected
  std::uint64_t stores = 0;

  [[nodiscard]] std::uint64_t total_hits() const { return hits + disk_hits - invalid; }
  [[nodiscard]] std::uint64_t lookups() const { return hits + disk_hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(total_hits()) / static_cast<double>(n);
  }
};

class ResultCache {
 public:
  // dir == "" keeps the cache memory-only.  The directory is created on
  // first store; an unwritable directory degrades to memory-only silently
  // (the cache is an optimization, never a correctness dependency).
  explicit ResultCache(std::string dir = "");

  // Returns the payload, or nullopt on a full miss.  A disk-tier hit is
  // promoted into the memory tier.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

  void store(std::uint64_t key, std::string_view payload);

  // Reclassifies a hit whose payload the caller could not decode (stale or
  // corrupted entry): counts it as invalid, evicts it from the memory tier
  // and deletes the disk file so the poisoned entry cannot re-promote.
  void invalidate(std::uint64_t key);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::size_t size() const;
  // Payload bytes currently held by the memory tier (a running counter, not
  // a walk) — exported as the cache.memory_bytes gauge.
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();  // memory tier + stats only; disk entries are left alone

 private:
  [[nodiscard]] std::string path_for(std::uint64_t key) const;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::string> mem_;
  std::size_t mem_bytes_ = 0;  // sum of mem_ payload sizes
  std::string dir_;
  CacheStats stats_;
  bool dir_ready_ = false;
};

}  // namespace ilp::engine
