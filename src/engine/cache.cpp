#include "engine/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ilp::engine {

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

HashStream& HashStream::bytes(const void* data, std::size_t n) {
  h_ = fnv1a(data, n, h_);
  return *this;
}

HashStream& HashStream::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

HashStream& HashStream::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.cell",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = mem_.find(key);
    if (it != mem_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  if (!dir_.empty()) {
    std::ifstream in(path_for(key), std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      std::string payload = ss.str();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_hits;
      if (mem_.emplace(key, payload).second) mem_bytes_ += payload.size();
      return payload;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(std::uint64_t key, std::string_view payload) {
  bool write_disk = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    if (auto it = mem_.find(key); it != mem_.end()) mem_bytes_ -= it->second.size();
    mem_bytes_ += payload.size();
    mem_.insert_or_assign(key, std::string(payload));
    if (!dir_.empty()) {
      if (!dir_ready_) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        dir_ready_ = !ec || std::filesystem::is_directory(dir_, ec);
      }
      write_disk = dir_ready_;
    }
  }
  if (write_disk) {
    // Write-then-rename so concurrent readers never see a torn file.  The
    // temp name carries a process-wide ticket: thread-id hashes can collide,
    // and two writers of the same key sharing one temp path would interleave
    // writes and then publish the torn file via rename (caught by the
    // contention test in tests/engine/cache_test.cpp).
    static std::atomic<std::uint64_t> ticket{0};
    const std::string final_path = path_for(key);
    std::ostringstream tmp;
    tmp << final_path << ".tmp." << ::getpid() << "."
        << ticket.fetch_add(1, std::memory_order_relaxed);
    {
      std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
      if (!out) return;
      out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      if (!out) return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp.str(), final_path, ec);
    if (ec) std::filesystem::remove(tmp.str(), ec);
  }
}

void ResultCache::invalidate(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.invalid;
    if (auto it = mem_.find(key); it != mem_.end()) {
      mem_bytes_ -= it->second.size();
      mem_.erase(it);
    }
  }
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_for(key), ec);
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_.size();
}

std::size_t ResultCache::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_bytes_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  mem_.clear();
  mem_bytes_ = 0;
  stats_ = CacheStats{};
}

}  // namespace ilp::engine
