#include "engine/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace ilp::engine {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

void MetricsRegistry::add_time(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricStat& s = stats_[std::string(name)];
  ++s.count;
  s.total_ns += ns;
}

void MetricsRegistry::add_count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[std::string(name)].count += delta;
}

std::vector<std::pair<std::string, MetricStat>> MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, MetricStat>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(stats_.begin(), stats_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  const auto snap = snapshot();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s  \"%s\": {\"count\": %llu, \"total_ms\": %.3f, \"mean_us\": %.3f}%s\n",
                  pad.c_str(), snap[i].first.c_str(),
                  static_cast<unsigned long long>(snap[i].second.count),
                  snap[i].second.total_ms(), snap[i].second.mean_us(),
                  i + 1 < snap.size() ? "," : "");
    out += line;
  }
  out += pad + "}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

}  // namespace ilp::engine
