#include "engine/metrics.hpp"

#include <cstdio>
#include <set>

#include "obs/prometheus.hpp"

namespace ilp::engine {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

void MetricsRegistry::add_time(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) it = stats_.emplace(std::string(name), MetricStat{}).first;
  ++it->second.count;
  it->second.total_ns += ns;
}

void MetricsRegistry::add_count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) it = stats_.emplace(std::string(name), MetricStat{}).first;
  it->second.count += delta;
}

void MetricsRegistry::record_max(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else if (value > it->second)
    it->second = value;
}

obs::Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), std::make_unique<obs::Histogram>()).first;
  return *it->second;
}

std::string_view MetricsRegistry::intern_name(std::string_view name) {
  static std::mutex mu;
  static std::set<std::string, std::less<>> table;
  std::lock_guard<std::mutex> lock(mu);
  auto it = table.find(name);
  if (it == table.end()) it = table.emplace(name).first;
  return *it;
}

std::vector<std::pair<std::string, MetricStat>> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stats_.begin(), stats_.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::gauge_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, obs::Histogram::Snapshot>>
MetricsRegistry::hist_snapshot() const {
  std::vector<std::pair<std::string, obs::Histogram::Snapshot>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(hists_.size());
  for (const auto& [name, hist] : hists_) out.emplace_back(name, hist->snapshot());
  return out;
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  const auto snap = snapshot();
  const auto gauges = gauge_snapshot();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s  \"%s\": {\"count\": %llu, \"total_ms\": %.3f, \"mean_us\": %.3f}%s\n",
                  pad.c_str(), snap[i].first.c_str(),
                  static_cast<unsigned long long>(snap[i].second.count),
                  snap[i].second.total_ms(), snap[i].second.mean_us(),
                  i + 1 < snap.size() || !gauges.empty() ? "," : "");
    out += line;
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line, "%s  \"%s\": {\"max\": %llu}%s\n", pad.c_str(),
                  gauges[i].first.c_str(),
                  static_cast<unsigned long long>(gauges[i].second),
                  i + 1 < gauges.size() ? "," : "");
    out += line;
  }
  out += pad + "}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& [name, stat] : snapshot()) {
    if (stat.total_ns == 0) {
      obs::prom::append_counter(out, name, stat.count);
    } else {
      obs::prom::append_counter(out, name + "_count", stat.count);
      obs::prom::append_gauge(out, name + "_seconds_total",
                              static_cast<double>(stat.total_ns) / 1e9);
    }
  }
  for (const auto& [name, value] : gauge_snapshot())
    obs::prom::append_gauge(out, name + "_max", static_cast<double>(value));
  for (const auto& [name, snap] : hist_snapshot())
    obs::prom::append_histogram(out, name + "_seconds", snap, 1e-9);
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
  gauges_.clear();
  // Histogram references handed out by histogram() must stay valid, so the
  // entries are zeroed in place rather than erased.
  for (auto& [name, hist] : hists_) hist->reset();
}

}  // namespace ilp::engine
