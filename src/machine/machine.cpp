#include "machine/machine.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace ilp {

int MachineModel::latency(Opcode op) const {
  switch (op) {
    case Opcode::IADD:
    case Opcode::ISUB:
    case Opcode::ISHL:
    case Opcode::ISHRA:
    case Opcode::ISHRL:
    case Opcode::IAND:
    case Opcode::IOR:
    case Opcode::IXOR:
    case Opcode::IMOV:
    case Opcode::INEG:
    case Opcode::IMAX:
    case Opcode::IMIN:
    case Opcode::LDI:
      return lat_int_alu;
    case Opcode::IMUL:
    case Opcode::IMULH:
      return lat_int_mul;
    case Opcode::IDIV:
    case Opcode::IREM:
      return lat_int_div;
    case Opcode::FADD:
    case Opcode::FSUB:
    case Opcode::FMAX:
    case Opcode::FMIN:
      return lat_fp_alu;
    case Opcode::FMUL:
      return lat_fp_mul;
    case Opcode::FDIV:
      return lat_fp_div;
    case Opcode::FMOV:
    case Opcode::FNEG:
    case Opcode::FLDI:
      return 1;  // move/materialize unit; not on any paper example's critical path
    case Opcode::ITOF:
    case Opcode::FTOI:
      return lat_fp_conv;
    case Opcode::LD:
    case Opcode::FLD:
      return lat_load;
    case Opcode::ST:
    case Opcode::FST:
      return lat_store;
    case Opcode::JUMP:
    case Opcode::RET:
    case Opcode::NOP:
      return lat_branch;
    default:
      if (op_is_branch(op)) return lat_branch;
      ILP_UNREACHABLE("latency: bad opcode");
  }
}

std::string MachineModel::describe() const {
  return strformat(
      "issue-%d in-order superscalar/VLIW; latencies: IntALU=%d IntMul=%d IntDiv=%d "
      "Branch=%d(%d slot) Load=%d Store=%d FPALU=%d FPConv=%d FPMul=%d FPDiv=%d",
      issue_width, lat_int_alu, lat_int_mul, lat_int_div, lat_branch, branch_slots,
      lat_load, lat_store, lat_fp_alu, lat_fp_conv, lat_fp_mul, lat_fp_div);
}

}  // namespace ilp
