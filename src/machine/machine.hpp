// Parameterized superscalar/VLIW node-processor model (paper Section 3.1 and
// Table 1).
//
// The microarchitecture is in-order issue with register interlocking and
// deterministic latencies.  `issue_width` instructions may issue per cycle
// with no restriction on the mix, except that only one branch may issue per
// cycle (Table 1: "branch 1 / 1 slot").  Loads are non-excepting, the cache
// always hits, and the register supply is unlimited.
#pragma once

#include <cstdint>
#include <string>

#include "ir/opcode.hpp"

namespace ilp {

struct MachineModel {
  int issue_width = 1;
  int branch_slots = 1;

  // Table 1 latencies.
  int lat_int_alu = 1;
  int lat_int_mul = 3;
  int lat_int_div = 10;
  int lat_branch = 1;
  int lat_load = 2;
  int lat_store = 1;
  int lat_fp_alu = 3;
  int lat_fp_conv = 3;
  int lat_fp_mul = 3;
  int lat_fp_div = 10;

  [[nodiscard]] int latency(Opcode op) const;

  [[nodiscard]] static MachineModel issue(int width) {
    MachineModel m;
    m.issue_width = width;
    return m;
  }

  // Human-readable one-line description for report headers.
  [[nodiscard]] std::string describe() const;
};

}  // namespace ilp
