#include "sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/profile.hpp"
#include "support/assert.hpp"
#include "support/flat_map.hpp"
#include "support/strings.hpp"

namespace ilp {

namespace {

// Wrapping signed arithmetic without UB.
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

struct Cursor {
  std::size_t block_pos = 0;  // layout position
  std::size_t inst_idx = 0;
};

}  // namespace

SimResult Simulator::run(const Function& fn, Memory& mem) const {
  // Compile-time dispatch keeps the unprofiled path exactly what it was
  // before profiling existed: no extra state, no per-issue bookkeeping.
  return options_.profile != nullptr ? run_impl<true>(fn, mem)
                                     : run_impl<false>(fn, mem);
}

template <bool kProfile>
SimResult Simulator::run_impl(const Function& fn, Memory& mem) const {
  SimResult res;
  if (fn.num_blocks() == 0) {
    res.error = "empty function";
    return res;
  }

  // Register state and per-register ready cycles.
  std::vector<std::int64_t> ints(std::max<std::size_t>(fn.num_regs(RegClass::Int), 1), 0);
  std::vector<double> fps(std::max<std::size_t>(fn.num_regs(RegClass::Fp), 1), 0.0);
  for (std::size_t i = 0; i < options_.init_ints.size() && i < ints.size(); ++i)
    ints[i] = options_.init_ints[i];
  for (std::size_t i = 0; i < options_.init_fps.size() && i < fps.size(); ++i)
    fps[i] = options_.init_fps[i];
  std::vector<std::uint64_t> ready_int(ints.size(), 0);
  std::vector<std::uint64_t> ready_fp(fps.size(), 0);
  // Address -> cycle the latest store to it completes.  An entry only
  // matters while its cycle is still in the future, so the table is dropped
  // whenever `cycle` passes the latest pending store (`mem_horizon`).  That
  // bounds it to the stores in flight — a handful of slots — instead of every
  // address the program ever wrote, keeping load lookups at ~1 probe.
  FlatHashMap64 mem_ready;
  std::uint64_t mem_horizon = 0;

  // Profiling state.  The raw/mem split needs to know whether a register's
  // latest producer was a load; the flag vectors parallel the ready arrays
  // and exist only in the profiled instantiation.
  CycleProfile* prof = nullptr;
  std::vector<std::uint8_t> load_made_int, load_made_fp;
  if constexpr (kProfile) {
    prof = options_.profile;
    prof->reset(machine_.issue_width, fn);
    load_made_int.assign(ints.size(), 0);
    load_made_fp.assign(fps.size(), 0);
  }

  // MachineModel::latency is an out-of-line switch; tabulate it once so the
  // per-issue lookup is a single indexed load.
  std::array<int, kNumOpcodes> lat_table{};
  for (int op = 0; op < kNumOpcodes; ++op)
    lat_table[static_cast<std::size_t>(op)] = machine_.latency(static_cast<Opcode>(op));

  const auto& blocks = fn.blocks();
  Cursor pc;
  std::uint64_t cycle = 0;
  bool done = false;

  auto reg_ready = [&](const Reg& r) -> std::uint64_t {
    return r.cls == RegClass::Int ? ready_int[r.id] : ready_fp[r.id];
  };
  auto set_ready = [&](const Reg& r, std::uint64_t c) {
    (r.cls == RegClass::Int ? ready_int[r.id] : ready_fp[r.id]) = c;
  };
  auto iget = [&](const Reg& r) { return ints[r.id]; };
  auto fget = [&](const Reg& r) { return fps[r.id]; };

  auto fail = [&](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
    res.cycles = cycle;
  };

  while (!done) {
    // Every pending store has completed: all entries are <= cycle and can no
    // longer delay a load, so forget them wholesale.
    if (cycle >= mem_horizon && mem_ready.size() != 0) mem_ready.clear();

    int issued = 0;
    int branches_this_cycle = 0;
    bool advanced = false;
    // Cycle the head instruction's last blocking operand becomes ready; set
    // only when the issue loop breaks on an interlock (not on slot limits or
    // taken branches, which clear at the next cycle boundary).
    std::uint64_t stall_until = 0;
    // Attribution of this cycle's unissued slots (profiled runs only): the
    // cause, the blocked/redirecting instruction's layout block and opcode.
    // The defaults are never read — every path that leaves slots unissued
    // overwrites all three before the cycle's books are closed.
    [[maybe_unused]] StallCause cycle_cause = StallCause::Drain;
    [[maybe_unused]] std::size_t cause_block = 0;
    [[maybe_unused]] Opcode cause_op = Opcode::NOP;

    while (issued < machine_.issue_width) {
      // Fallthrough across block boundaries is free (sequential fetch).
      while (pc.inst_idx >= blocks[pc.block_pos].insts.size()) {
        if (pc.block_pos + 1 >= blocks.size()) {
          fail("fell off end of function");
          return res;
        }
        ++pc.block_pos;
        pc.inst_idx = 0;
      }
      const Instruction& in = blocks[pc.block_pos].insts[pc.inst_idx];

      // Branch-slot restriction: a structural width limit, not a data hazard.
      if (in.is_control() && branches_this_cycle >= machine_.branch_slots) {
        if constexpr (kProfile) {
          cycle_cause = StallCause::ResourceWidth;
          cause_block = pc.block_pos;
          cause_op = in.op;
        }
        break;
      }

      // Register interlocks: every source must be ready.  `ready_by` collects
      // the max ready cycle over all blocking conditions; register *values*
      // are written at issue, so they (and hence `addr`) are already final
      // even while the timing model says the instruction must wait.
      std::uint64_t ready_by = 0;
      [[maybe_unused]] bool stall_mem = false;
      // Raises the pending-constraint max; under profiling also tracks
      // whether the *latest* constraint is memory-shaped.  Ties go to memory
      // — the deeper reason the operand is late — which keeps attribution
      // identical between skip-stall and per-cycle evaluation.
      auto raise = [&](std::uint64_t r, [[maybe_unused]] bool is_mem) {
        if constexpr (kProfile) {
          if (r > ready_by)
            stall_mem = is_mem;
          else if (r == ready_by && is_mem)
            stall_mem = true;
        }
        ready_by = std::max(ready_by, r);
      };
      [[maybe_unused]] auto made_by_load = [&](const Reg& r) -> bool {
        if constexpr (kProfile)
          return (r.cls == RegClass::Int ? load_made_int[r.id]
                                         : load_made_fp[r.id]) != 0;
        else
          return false;
      };
      if (in.src1.valid()) raise(reg_ready(in.src1), made_by_load(in.src1));
      if (in.src2.valid() && !in.src2_is_imm)
        raise(reg_ready(in.src2), made_by_load(in.src2));
      // Load waits for the latest store to the same address to complete.
      std::int64_t addr = 0;
      if (in.is_memory()) {
        addr = wrap_add(iget(in.src1), in.ival);
        if (in.is_load()) {
          if (const std::uint64_t* r = mem_ready.find(addr)) raise(*r, true);
        }
      }
      if (ready_by > cycle) {
        stall_until = ready_by;
        if constexpr (kProfile) {
          cycle_cause = stall_mem ? StallCause::MemWait : StallCause::RawWait;
          cause_block = pc.block_pos;
          cause_op = in.op;
        }
        break;
      }

      // ---- Issue: apply functional semantics. ----
      if (res.instructions >= options_.max_instructions) {
        fail(strformat("instruction budget exceeded (%llu)",
                       static_cast<unsigned long long>(options_.max_instructions)));
        return res;
      }
      ++res.instructions;
      ++issued;
      advanced = true;
      if (options_.trace && options_.trace->size() < options_.trace_limit)
        options_.trace->push_back(IssueEvent{in.uid, cycle});
      if constexpr (kProfile) {
        ++prof->issued_by_opcode[static_cast<std::size_t>(in.op)];
        ++prof->block_slots[pc.block_pos]
                           [static_cast<std::size_t>(StallCause::Issued)];
      }

      const int lat = lat_table[static_cast<std::size_t>(in.op)];
      bool taken = false;
      switch (in.op) {
        case Opcode::IADD:
          ints[in.dst.id] = wrap_add(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::ISUB:
          ints[in.dst.id] = wrap_sub(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMUL:
          ints[in.dst.id] = wrap_mul(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMULH: {
          const __int128 p = static_cast<__int128>(iget(in.src1)) *
                             static_cast<__int128>(in.src2_is_imm ? in.ival : iget(in.src2));
          ints[in.dst.id] = static_cast<std::int64_t>(p >> 64);
          break;
        }
        case Opcode::IDIV:
        case Opcode::IREM: {
          const std::int64_t a = iget(in.src1);
          const std::int64_t b = in.src2_is_imm ? in.ival : iget(in.src2);
          if (b == 0) {
            fail("integer division by zero");
            return res;
          }
          std::int64_t q;
          if (a == INT64_MIN && b == -1)
            q = INT64_MIN;  // wraps
          else
            q = a / b;
          ints[in.dst.id] = in.op == Opcode::IDIV ? q : wrap_sub(a, wrap_mul(q, b));
          break;
        }
        case Opcode::ISHL:
        case Opcode::ISHRA:
        case Opcode::ISHRL: {
          const std::uint64_t a = static_cast<std::uint64_t>(iget(in.src1));
          const int s =
              static_cast<int>((in.src2_is_imm ? in.ival : iget(in.src2)) & 63);
          std::uint64_t r = 0;
          if (in.op == Opcode::ISHL)
            r = a << s;
          else if (in.op == Opcode::ISHRL)
            r = a >> s;
          else
            r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> s);
          ints[in.dst.id] = static_cast<std::int64_t>(r);
          break;
        }
        case Opcode::IAND:
          ints[in.dst.id] = iget(in.src1) & (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IOR:
          ints[in.dst.id] = iget(in.src1) | (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IXOR:
          ints[in.dst.id] = iget(in.src1) ^ (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMAX:
          ints[in.dst.id] =
              std::max(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMIN:
          ints[in.dst.id] =
              std::min(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMOV:
          ints[in.dst.id] = iget(in.src1);
          break;
        case Opcode::INEG:
          ints[in.dst.id] = wrap_sub(0, iget(in.src1));
          break;
        case Opcode::LDI:
          ints[in.dst.id] = in.ival;
          break;
        case Opcode::FADD:
          fps[in.dst.id] = fget(in.src1) + (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FSUB:
          fps[in.dst.id] = fget(in.src1) - (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMUL:
          fps[in.dst.id] = fget(in.src1) * (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FDIV:
          fps[in.dst.id] = fget(in.src1) / (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMAX:
          fps[in.dst.id] = std::max(fget(in.src1), in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMIN:
          fps[in.dst.id] = std::min(fget(in.src1), in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMOV:
          fps[in.dst.id] = fget(in.src1);
          break;
        case Opcode::FNEG:
          fps[in.dst.id] = -fget(in.src1);
          break;
        case Opcode::FLDI:
          fps[in.dst.id] = in.fval;
          break;
        case Opcode::ITOF:
          fps[in.dst.id] = static_cast<double>(iget(in.src1));
          break;
        case Opcode::FTOI: {
          const double v = fget(in.src1);
          if (!(v >= -9.2e18 && v <= 9.2e18)) {
            fail("ftoi out of range");
            return res;
          }
          ints[in.dst.id] = static_cast<std::int64_t>(v);
          break;
        }
        case Opcode::LD:
          ints[in.dst.id] = mem.load_int(addr);
          break;
        case Opcode::FLD:
          fps[in.dst.id] = mem.load_fp(addr);
          break;
        case Opcode::ST:
          mem.store_int(addr, iget(in.src2));
          mem_ready.put(addr, cycle + static_cast<std::uint64_t>(lat));
          mem_horizon = std::max(mem_horizon, cycle + static_cast<std::uint64_t>(lat));
          break;
        case Opcode::FST:
          mem.store_fp(addr, fget(in.src2));
          mem_ready.put(addr, cycle + static_cast<std::uint64_t>(lat));
          mem_horizon = std::max(mem_horizon, cycle + static_cast<std::uint64_t>(lat));
          break;
        case Opcode::JUMP:
          taken = true;
          break;
        case Opcode::RET:
          done = true;
          break;
        case Opcode::NOP:
          break;
        default: {
          ILP_ASSERT(in.is_branch(), "unhandled opcode in simulator");
          bool cond;
          if (op_is_fp_compare(in.op)) {
            const double a = fget(in.src1);
            const double b = in.src2_is_imm ? in.fval : fget(in.src2);
            switch (in.op) {
              case Opcode::FBEQ: cond = a == b; break;
              case Opcode::FBNE: cond = a != b; break;
              case Opcode::FBLT: cond = a < b; break;
              case Opcode::FBLE: cond = a <= b; break;
              case Opcode::FBGT: cond = a > b; break;
              default: cond = a >= b; break;  // FBGE
            }
          } else {
            const std::int64_t a = iget(in.src1);
            const std::int64_t b = in.src2_is_imm ? in.ival : iget(in.src2);
            switch (in.op) {
              case Opcode::BEQ: cond = a == b; break;
              case Opcode::BNE: cond = a != b; break;
              case Opcode::BLT: cond = a < b; break;
              case Opcode::BLE: cond = a <= b; break;
              case Opcode::BGT: cond = a > b; break;
              default: cond = a >= b; break;  // BGE
            }
          }
          taken = cond;
          break;
        }
      }

      if (in.has_dest()) {
        set_ready(in.dst, cycle + static_cast<std::uint64_t>(lat));
        if constexpr (kProfile)
          (in.dst.cls == RegClass::Int ? load_made_int
                                       : load_made_fp)[in.dst.id] =
              in.is_load() ? 1 : 0;
      }
      if (in.is_control()) {
        ++branches_this_cycle;
        ++res.branches;
      }
      if (done) break;

      if (taken) {
        if constexpr (kProfile) {
          // Slots squashed by the redirect land on the branch's own block,
          // recorded before pc moves to the target.
          cycle_cause = StallCause::BranchFetch;
          cause_block = pc.block_pos;
          cause_op = in.op;
        }
        // Redirect: target issues no earlier than cycle + branch latency.
        pc.block_pos = fn.layout_index(in.target);
        pc.inst_idx = 0;
        break;  // taken control transfer ends the issue cycle
      }
      ++pc.inst_idx;
    }

    if constexpr (kProfile) {
      // Close the cycle's books: `issued` slots already landed per-block and
      // per-opcode above; the remainder all share one cause.  The final
      // cycle's remainder is the pipeline drain behind RET.
      const auto w = static_cast<std::uint64_t>(machine_.issue_width);
      const auto rem = w - static_cast<std::uint64_t>(issued);
      ++prof->occupancy[static_cast<std::size_t>(issued)];
      prof->slots[static_cast<std::size_t>(StallCause::Issued)] +=
          static_cast<std::uint64_t>(issued);
      if (done) {
        cycle_cause = StallCause::Drain;
        cause_block = pc.block_pos;
        cause_op = Opcode::RET;
      }
      if (rem > 0) {
        prof->slots[static_cast<std::size_t>(cycle_cause)] += rem;
        prof->block_slots[cause_block][static_cast<std::size_t>(cycle_cause)] +=
            rem;
        prof->stall_by_opcode[static_cast<std::size_t>(cause_op)] += rem;
      }
    }
    if (done) {
      res.cycles = cycle + 1;
      if constexpr (kProfile) prof->cycles = res.cycles;
      break;
    }
    if (!advanced) ++res.stall_cycles;
    ++cycle;
    // While the head instruction waits for `stall_until`, no instruction can
    // issue (in-order): every intervening cycle is a full stall.  Account for
    // them in one step instead of looping through each.
    if (options_.skip_stall_cycles && stall_until > cycle) {
      const std::uint64_t skipped = stall_until - cycle;
      res.stall_cycles += skipped;
      if constexpr (kProfile) {
        // Each skipped cycle is a full-width stall with the same blocking
        // cause as the cycle that set `stall_until` (the constraint set is
        // frozen while the head waits), so attributing them here keeps
        // skip-on and skip-off profiles identical.
        const auto w = static_cast<std::uint64_t>(machine_.issue_width);
        prof->occupancy[0] += skipped;
        prof->slots[static_cast<std::size_t>(cycle_cause)] += skipped * w;
        prof->block_slots[cause_block][static_cast<std::size_t>(cycle_cause)] +=
            skipped * w;
        prof->stall_by_opcode[static_cast<std::size_t>(cause_op)] +=
            skipped * w;
      }
      cycle = stall_until;
    }
  }

  res.ok = true;
  res.regs.ints = std::move(ints);
  res.regs.fps = std::move(fps);
  return res;
}

namespace {
std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void seed_arrays(const Function& fn, Memory& mem, std::uint64_t seed) {
  std::size_t cells = 0;
  for (const auto& arr : fn.arrays()) cells += static_cast<std::size_t>(arr.length);
  mem.reserve(cells);
  for (const auto& arr : fn.arrays()) {
    std::uint64_t s = seed;
    for (char c : arr.name) s = s * 131 + static_cast<std::uint64_t>(c);
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      const std::uint64_t r = splitmix64(s);
      if (arr.is_fp) {
        // Values in (0.0625, 2.0625): positive, away from zero, modest
        // magnitude so products/sums stay finite across long loops.
        const double v = 0.0625 + static_cast<double>(r % 1024) / 512.0;
        mem.store_fp(addr, v);
      } else {
        mem.store_int(addr, static_cast<std::int64_t>(1 + r % 16));
      }
    }
  }
}

RunOutcome run_seeded(const Function& fn, const MachineModel& machine, SimOptions options) {
  RunOutcome out;
  seed_arrays(fn, out.memory);
  Simulator sim(machine, std::move(options));
  out.result = sim.run(fn, out.memory);
  return out;
}

std::string compare_observable(const Function& fn, const RunOutcome& a, const RunOutcome& b,
                               double fp_tolerance) {
  if (!a.result.ok) return "first run failed: " + a.result.error;
  if (!b.result.ok) return "second run failed: " + b.result.error;

  auto fp_close = [&](double x, double y) {
    const double diff = std::fabs(x - y);
    const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return diff <= fp_tolerance * scale;
  };

  for (const auto& arr : fn.arrays()) {
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      if (arr.is_fp) {
        const double x = a.memory.load_fp(addr);
        const double y = b.memory.load_fp(addr);
        if (!fp_close(x, y))
          return strformat("%s[%lld]: %.17g vs %.17g", arr.name.c_str(),
                           static_cast<long long>(i), x, y);
      } else {
        const std::int64_t x = a.memory.load_int(addr);
        const std::int64_t y = b.memory.load_int(addr);
        if (x != y)
          return strformat("%s[%lld]: %lld vs %lld", arr.name.c_str(),
                           static_cast<long long>(i), static_cast<long long>(x),
                           static_cast<long long>(y));
      }
    }
  }
  for (const Reg& r : fn.live_out()) {
    if (r.cls == RegClass::Fp) {
      const double x = a.result.regs.get_fp(r.id);
      const double y = b.result.regs.get_fp(r.id);
      if (!fp_close(x, y))
        return strformat("live-out r%u.f: %.17g vs %.17g", r.id, x, y);
    } else {
      const std::int64_t x = a.result.regs.get_int(r.id);
      const std::int64_t y = b.result.regs.get_int(r.id);
      if (x != y)
        return strformat("live-out r%u.i: %lld vs %lld", r.id, static_cast<long long>(x),
                         static_cast<long long>(y));
    }
  }
  return {};
}

}  // namespace ilp
