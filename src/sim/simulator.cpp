#include "sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/assert.hpp"
#include "support/flat_map.hpp"
#include "support/strings.hpp"

namespace ilp {

namespace {

// Wrapping signed arithmetic without UB.
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

struct Cursor {
  std::size_t block_pos = 0;  // layout position
  std::size_t inst_idx = 0;
};

}  // namespace

SimResult Simulator::run(const Function& fn, Memory& mem) const {
  SimResult res;
  if (fn.num_blocks() == 0) {
    res.error = "empty function";
    return res;
  }

  // Register state and per-register ready cycles.
  std::vector<std::int64_t> ints(std::max<std::size_t>(fn.num_regs(RegClass::Int), 1), 0);
  std::vector<double> fps(std::max<std::size_t>(fn.num_regs(RegClass::Fp), 1), 0.0);
  for (std::size_t i = 0; i < options_.init_ints.size() && i < ints.size(); ++i)
    ints[i] = options_.init_ints[i];
  for (std::size_t i = 0; i < options_.init_fps.size() && i < fps.size(); ++i)
    fps[i] = options_.init_fps[i];
  std::vector<std::uint64_t> ready_int(ints.size(), 0);
  std::vector<std::uint64_t> ready_fp(fps.size(), 0);
  // Address -> cycle the latest store to it completes.  An entry only
  // matters while its cycle is still in the future, so the table is dropped
  // whenever `cycle` passes the latest pending store (`mem_horizon`).  That
  // bounds it to the stores in flight — a handful of slots — instead of every
  // address the program ever wrote, keeping load lookups at ~1 probe.
  FlatHashMap64 mem_ready;
  std::uint64_t mem_horizon = 0;

  // MachineModel::latency is an out-of-line switch; tabulate it once so the
  // per-issue lookup is a single indexed load.
  std::array<int, kNumOpcodes> lat_table{};
  for (int op = 0; op < kNumOpcodes; ++op)
    lat_table[static_cast<std::size_t>(op)] = machine_.latency(static_cast<Opcode>(op));

  const auto& blocks = fn.blocks();
  Cursor pc;
  std::uint64_t cycle = 0;
  bool done = false;

  auto reg_ready = [&](const Reg& r) -> std::uint64_t {
    return r.cls == RegClass::Int ? ready_int[r.id] : ready_fp[r.id];
  };
  auto set_ready = [&](const Reg& r, std::uint64_t c) {
    (r.cls == RegClass::Int ? ready_int[r.id] : ready_fp[r.id]) = c;
  };
  auto iget = [&](const Reg& r) { return ints[r.id]; };
  auto fget = [&](const Reg& r) { return fps[r.id]; };

  auto fail = [&](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
    res.cycles = cycle;
  };

  while (!done) {
    // Every pending store has completed: all entries are <= cycle and can no
    // longer delay a load, so forget them wholesale.
    if (cycle >= mem_horizon && mem_ready.size() != 0) mem_ready.clear();

    int issued = 0;
    int branches_this_cycle = 0;
    bool advanced = false;
    // Cycle the head instruction's last blocking operand becomes ready; set
    // only when the issue loop breaks on an interlock (not on slot limits or
    // taken branches, which clear at the next cycle boundary).
    std::uint64_t stall_until = 0;

    while (issued < machine_.issue_width) {
      // Fallthrough across block boundaries is free (sequential fetch).
      while (pc.inst_idx >= blocks[pc.block_pos].insts.size()) {
        if (pc.block_pos + 1 >= blocks.size()) {
          fail("fell off end of function");
          return res;
        }
        ++pc.block_pos;
        pc.inst_idx = 0;
      }
      const Instruction& in = blocks[pc.block_pos].insts[pc.inst_idx];

      // Branch-slot restriction.
      if (in.is_control() && branches_this_cycle >= machine_.branch_slots) break;

      // Register interlocks: every source must be ready.  `ready_by` collects
      // the max ready cycle over all blocking conditions; register *values*
      // are written at issue, so they (and hence `addr`) are already final
      // even while the timing model says the instruction must wait.
      std::uint64_t ready_by = 0;
      if (in.src1.valid()) ready_by = std::max(ready_by, reg_ready(in.src1));
      if (in.src2.valid() && !in.src2_is_imm)
        ready_by = std::max(ready_by, reg_ready(in.src2));
      // Load waits for the latest store to the same address to complete.
      std::int64_t addr = 0;
      if (in.is_memory()) {
        addr = wrap_add(iget(in.src1), in.ival);
        if (in.is_load()) {
          if (const std::uint64_t* r = mem_ready.find(addr))
            ready_by = std::max(ready_by, *r);
        }
      }
      if (ready_by > cycle) {
        stall_until = ready_by;
        break;
      }

      // ---- Issue: apply functional semantics. ----
      if (res.instructions >= options_.max_instructions) {
        fail(strformat("instruction budget exceeded (%llu)",
                       static_cast<unsigned long long>(options_.max_instructions)));
        return res;
      }
      ++res.instructions;
      ++issued;
      advanced = true;
      if (options_.trace && options_.trace->size() < options_.trace_limit)
        options_.trace->push_back(IssueEvent{in.uid, cycle});

      const int lat = lat_table[static_cast<std::size_t>(in.op)];
      bool taken = false;
      switch (in.op) {
        case Opcode::IADD:
          ints[in.dst.id] = wrap_add(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::ISUB:
          ints[in.dst.id] = wrap_sub(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMUL:
          ints[in.dst.id] = wrap_mul(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMULH: {
          const __int128 p = static_cast<__int128>(iget(in.src1)) *
                             static_cast<__int128>(in.src2_is_imm ? in.ival : iget(in.src2));
          ints[in.dst.id] = static_cast<std::int64_t>(p >> 64);
          break;
        }
        case Opcode::IDIV:
        case Opcode::IREM: {
          const std::int64_t a = iget(in.src1);
          const std::int64_t b = in.src2_is_imm ? in.ival : iget(in.src2);
          if (b == 0) {
            fail("integer division by zero");
            return res;
          }
          std::int64_t q;
          if (a == INT64_MIN && b == -1)
            q = INT64_MIN;  // wraps
          else
            q = a / b;
          ints[in.dst.id] = in.op == Opcode::IDIV ? q : wrap_sub(a, wrap_mul(q, b));
          break;
        }
        case Opcode::ISHL:
        case Opcode::ISHRA:
        case Opcode::ISHRL: {
          const std::uint64_t a = static_cast<std::uint64_t>(iget(in.src1));
          const int s =
              static_cast<int>((in.src2_is_imm ? in.ival : iget(in.src2)) & 63);
          std::uint64_t r = 0;
          if (in.op == Opcode::ISHL)
            r = a << s;
          else if (in.op == Opcode::ISHRL)
            r = a >> s;
          else
            r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> s);
          ints[in.dst.id] = static_cast<std::int64_t>(r);
          break;
        }
        case Opcode::IAND:
          ints[in.dst.id] = iget(in.src1) & (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IOR:
          ints[in.dst.id] = iget(in.src1) | (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IXOR:
          ints[in.dst.id] = iget(in.src1) ^ (in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMAX:
          ints[in.dst.id] =
              std::max(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMIN:
          ints[in.dst.id] =
              std::min(iget(in.src1), in.src2_is_imm ? in.ival : iget(in.src2));
          break;
        case Opcode::IMOV:
          ints[in.dst.id] = iget(in.src1);
          break;
        case Opcode::INEG:
          ints[in.dst.id] = wrap_sub(0, iget(in.src1));
          break;
        case Opcode::LDI:
          ints[in.dst.id] = in.ival;
          break;
        case Opcode::FADD:
          fps[in.dst.id] = fget(in.src1) + (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FSUB:
          fps[in.dst.id] = fget(in.src1) - (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMUL:
          fps[in.dst.id] = fget(in.src1) * (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FDIV:
          fps[in.dst.id] = fget(in.src1) / (in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMAX:
          fps[in.dst.id] = std::max(fget(in.src1), in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMIN:
          fps[in.dst.id] = std::min(fget(in.src1), in.src2_is_imm ? in.fval : fget(in.src2));
          break;
        case Opcode::FMOV:
          fps[in.dst.id] = fget(in.src1);
          break;
        case Opcode::FNEG:
          fps[in.dst.id] = -fget(in.src1);
          break;
        case Opcode::FLDI:
          fps[in.dst.id] = in.fval;
          break;
        case Opcode::ITOF:
          fps[in.dst.id] = static_cast<double>(iget(in.src1));
          break;
        case Opcode::FTOI: {
          const double v = fget(in.src1);
          if (!(v >= -9.2e18 && v <= 9.2e18)) {
            fail("ftoi out of range");
            return res;
          }
          ints[in.dst.id] = static_cast<std::int64_t>(v);
          break;
        }
        case Opcode::LD:
          ints[in.dst.id] = mem.load_int(addr);
          break;
        case Opcode::FLD:
          fps[in.dst.id] = mem.load_fp(addr);
          break;
        case Opcode::ST:
          mem.store_int(addr, iget(in.src2));
          mem_ready.put(addr, cycle + static_cast<std::uint64_t>(lat));
          mem_horizon = std::max(mem_horizon, cycle + static_cast<std::uint64_t>(lat));
          break;
        case Opcode::FST:
          mem.store_fp(addr, fget(in.src2));
          mem_ready.put(addr, cycle + static_cast<std::uint64_t>(lat));
          mem_horizon = std::max(mem_horizon, cycle + static_cast<std::uint64_t>(lat));
          break;
        case Opcode::JUMP:
          taken = true;
          break;
        case Opcode::RET:
          done = true;
          break;
        case Opcode::NOP:
          break;
        default: {
          ILP_ASSERT(in.is_branch(), "unhandled opcode in simulator");
          bool cond;
          if (op_is_fp_compare(in.op)) {
            const double a = fget(in.src1);
            const double b = in.src2_is_imm ? in.fval : fget(in.src2);
            switch (in.op) {
              case Opcode::FBEQ: cond = a == b; break;
              case Opcode::FBNE: cond = a != b; break;
              case Opcode::FBLT: cond = a < b; break;
              case Opcode::FBLE: cond = a <= b; break;
              case Opcode::FBGT: cond = a > b; break;
              default: cond = a >= b; break;  // FBGE
            }
          } else {
            const std::int64_t a = iget(in.src1);
            const std::int64_t b = in.src2_is_imm ? in.ival : iget(in.src2);
            switch (in.op) {
              case Opcode::BEQ: cond = a == b; break;
              case Opcode::BNE: cond = a != b; break;
              case Opcode::BLT: cond = a < b; break;
              case Opcode::BLE: cond = a <= b; break;
              case Opcode::BGT: cond = a > b; break;
              default: cond = a >= b; break;  // BGE
            }
          }
          taken = cond;
          break;
        }
      }

      if (in.has_dest()) set_ready(in.dst, cycle + static_cast<std::uint64_t>(lat));
      if (in.is_control()) {
        ++branches_this_cycle;
        ++res.branches;
      }
      if (done) break;

      if (taken) {
        // Redirect: target issues no earlier than cycle + branch latency.
        pc.block_pos = fn.layout_index(in.target);
        pc.inst_idx = 0;
        break;  // taken control transfer ends the issue cycle
      }
      ++pc.inst_idx;
    }

    if (done) {
      res.cycles = cycle + 1;
      break;
    }
    if (!advanced) ++res.stall_cycles;
    ++cycle;
    // While the head instruction waits for `stall_until`, no instruction can
    // issue (in-order): every intervening cycle is a full stall.  Account for
    // them in one step instead of looping through each.
    if (options_.skip_stall_cycles && stall_until > cycle) {
      res.stall_cycles += stall_until - cycle;
      cycle = stall_until;
    }
  }

  res.ok = true;
  res.regs.ints = std::move(ints);
  res.regs.fps = std::move(fps);
  return res;
}

namespace {
std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void seed_arrays(const Function& fn, Memory& mem, std::uint64_t seed) {
  std::size_t cells = 0;
  for (const auto& arr : fn.arrays()) cells += static_cast<std::size_t>(arr.length);
  mem.reserve(cells);
  for (const auto& arr : fn.arrays()) {
    std::uint64_t s = seed;
    for (char c : arr.name) s = s * 131 + static_cast<std::uint64_t>(c);
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      const std::uint64_t r = splitmix64(s);
      if (arr.is_fp) {
        // Values in (0.0625, 2.0625): positive, away from zero, modest
        // magnitude so products/sums stay finite across long loops.
        const double v = 0.0625 + static_cast<double>(r % 1024) / 512.0;
        mem.store_fp(addr, v);
      } else {
        mem.store_int(addr, static_cast<std::int64_t>(1 + r % 16));
      }
    }
  }
}

RunOutcome run_seeded(const Function& fn, const MachineModel& machine, SimOptions options) {
  RunOutcome out;
  seed_arrays(fn, out.memory);
  Simulator sim(machine, std::move(options));
  out.result = sim.run(fn, out.memory);
  return out;
}

std::string compare_observable(const Function& fn, const RunOutcome& a, const RunOutcome& b,
                               double fp_tolerance) {
  if (!a.result.ok) return "first run failed: " + a.result.error;
  if (!b.result.ok) return "second run failed: " + b.result.error;

  auto fp_close = [&](double x, double y) {
    const double diff = std::fabs(x - y);
    const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return diff <= fp_tolerance * scale;
  };

  for (const auto& arr : fn.arrays()) {
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      if (arr.is_fp) {
        const double x = a.memory.load_fp(addr);
        const double y = b.memory.load_fp(addr);
        if (!fp_close(x, y))
          return strformat("%s[%lld]: %.17g vs %.17g", arr.name.c_str(),
                           static_cast<long long>(i), x, y);
      } else {
        const std::int64_t x = a.memory.load_int(addr);
        const std::int64_t y = b.memory.load_int(addr);
        if (x != y)
          return strformat("%s[%lld]: %lld vs %lld", arr.name.c_str(),
                           static_cast<long long>(i), static_cast<long long>(x),
                           static_cast<long long>(y));
      }
    }
  }
  for (const Reg& r : fn.live_out()) {
    if (r.cls == RegClass::Fp) {
      const double x = a.result.regs.get_fp(r.id);
      const double y = b.result.regs.get_fp(r.id);
      if (!fp_close(x, y))
        return strformat("live-out r%u.f: %.17g vs %.17g", r.id, x, y);
    } else {
      const std::int64_t x = a.result.regs.get_int(r.id);
      const std::int64_t y = b.result.regs.get_int(r.id);
      if (x != y)
        return strformat("live-out r%u.i: %lld vs %lld", r.id, static_cast<long long>(x),
                         static_cast<long long>(y));
    }
  }
  return {};
}

}  // namespace ilp
