#include "sim/profile.hpp"

#include "ir/function.hpp"
#include "support/strings.hpp"

namespace ilp {

const char* stall_cause_name(StallCause c) {
  switch (c) {
    case StallCause::Issued: return "issued";
    case StallCause::RawWait: return "raw_wait";
    case StallCause::MemWait: return "mem_wait";
    case StallCause::ResourceWidth: return "resource_width";
    case StallCause::BranchFetch: return "branch_fetch";
    case StallCause::Drain: return "drain";
  }
  return "?";
}

void CycleProfile::reset(int machine_width, const Function& fn) {
  width = machine_width;
  cycles = 0;
  slots.fill(0);
  issued_by_opcode.fill(0);
  stall_by_opcode.fill(0);
  block_names.clear();
  block_names.reserve(fn.num_blocks());
  for (const Block& b : fn.blocks()) block_names.push_back(b.name);
  block_slots.assign(fn.num_blocks(), {});
  occupancy.assign(static_cast<std::size_t>(machine_width) + 1, 0);
}

std::uint64_t CycleProfile::total_slots() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t s : slots) sum += s;
  return sum;
}

double CycleProfile::fraction(StallCause c) const {
  const std::uint64_t total = total_slots();
  return total == 0 ? 0.0
                    : static_cast<double>(slots[static_cast<std::size_t>(c)]) /
                          static_cast<double>(total);
}

std::string CycleProfile::check_conservation() const {
  const std::uint64_t want =
      static_cast<std::uint64_t>(width) * cycles;
  if (total_slots() != want)
    return strformat("sum(slots)=%llu != width*cycles=%llu",
                     static_cast<unsigned long long>(total_slots()),
                     static_cast<unsigned long long>(want));
  for (int c = 0; c < kNumStallCauses; ++c) {
    std::uint64_t col = 0;
    for (const auto& row : block_slots) col += row[static_cast<std::size_t>(c)];
    if (col != slots[static_cast<std::size_t>(c)])
      return strformat("block column '%s'=%llu != global %llu",
                       stall_cause_name(static_cast<StallCause>(c)),
                       static_cast<unsigned long long>(col),
                       static_cast<unsigned long long>(
                           slots[static_cast<std::size_t>(c)]));
  }
  std::uint64_t occ_cycles = 0, occ_issued = 0;
  for (std::size_t k = 0; k < occupancy.size(); ++k) {
    occ_cycles += occupancy[k];
    occ_issued += static_cast<std::uint64_t>(k) * occupancy[k];
  }
  if (occ_cycles != cycles)
    return strformat("sum(occupancy)=%llu != cycles=%llu",
                     static_cast<unsigned long long>(occ_cycles),
                     static_cast<unsigned long long>(cycles));
  if (occ_issued != slots[0])
    return strformat("sum(k*occupancy[k])=%llu != issued slots %llu",
                     static_cast<unsigned long long>(occ_issued),
                     static_cast<unsigned long long>(slots[0]));
  std::uint64_t op_issued = 0, op_stalled = 0;
  for (int op = 0; op < kNumOpcodes; ++op) {
    op_issued += issued_by_opcode[static_cast<std::size_t>(op)];
    op_stalled += stall_by_opcode[static_cast<std::size_t>(op)];
  }
  if (op_issued != slots[0])
    return strformat("sum(issued_by_opcode)=%llu != issued slots %llu",
                     static_cast<unsigned long long>(op_issued),
                     static_cast<unsigned long long>(slots[0]));
  if (op_stalled != stalled_slots())
    return strformat("sum(stall_by_opcode)=%llu != stalled slots %llu",
                     static_cast<unsigned long long>(op_stalled),
                     static_cast<unsigned long long>(stalled_slots()));
  return {};
}

std::string CycleProfile::to_json() const {
  std::string out;
  out.reserve(512 + block_slots.size() * 128);
  out += strformat("{\"width\": %d, \"cycles\": %llu, \"slots\": {", width,
                   static_cast<unsigned long long>(cycles));
  for (int c = 0; c < kNumStallCauses; ++c)
    out += strformat("%s\"%s\": %llu", c == 0 ? "" : ", ",
                     stall_cause_name(static_cast<StallCause>(c)),
                     static_cast<unsigned long long>(
                         slots[static_cast<std::size_t>(c)]));
  out += "}, \"occupancy\": [";
  for (std::size_t k = 0; k < occupancy.size(); ++k)
    out += strformat("%s%llu", k == 0 ? "" : ", ",
                     static_cast<unsigned long long>(occupancy[k]));
  out += "], \"blocks\": [";
  for (std::size_t i = 0; i < block_slots.size(); ++i) {
    out += strformat("%s{\"name\": \"%s\", \"slots\": [", i == 0 ? "" : ", ",
                     json_escape(block_names[i]).c_str());
    for (int c = 0; c < kNumStallCauses; ++c)
      out += strformat("%s%llu", c == 0 ? "" : ", ",
                       static_cast<unsigned long long>(
                           block_slots[i][static_cast<std::size_t>(c)]));
    out += "]}";
  }
  out += "], \"opcodes\": [";
  bool first = true;
  for (int op = 0; op < kNumOpcodes; ++op) {
    const std::uint64_t iss = issued_by_opcode[static_cast<std::size_t>(op)];
    const std::uint64_t st = stall_by_opcode[static_cast<std::size_t>(op)];
    if (iss == 0 && st == 0) continue;
    out += strformat("%s{\"op\": \"%.*s\", \"issued\": %llu, \"stalled\": %llu}",
                     first ? "" : ", ",
                     static_cast<int>(opcode_name(static_cast<Opcode>(op)).size()),
                     opcode_name(static_cast<Opcode>(op)).data(),
                     static_cast<unsigned long long>(iss),
                     static_cast<unsigned long long>(st));
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace ilp
