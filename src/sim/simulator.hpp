// Execution-driven simulator for the parameterized in-order superscalar/VLIW
// processor of the paper (Section 3.1).
//
// Functional semantics and timing are computed together while running the
// program on real data — the same methodology the paper uses to derive
// execution times.  Timing model:
//
//   * Up to `issue_width` instructions issue per cycle, in program order.
//   * An instruction stalls (blocking all later ones — in-order issue with
//     register interlocks) until every source register is ready.  A dest
//     register written by an op of latency L at cycle c is ready at c+L.
//   * At most `branch_slots` (=1) control instructions issue per cycle.  A
//     taken branch/jump ends the issue cycle; the target instruction issues
//     no earlier than cycle + branch latency.  Untaken branches allow
//     continued same-cycle issue of fall-through instructions.
//   * A load from address a stalls until the latest store to a completes
//     (store latency 1 ⇒ the following cycle).
//
// This model reproduces every issue-time (IT) table in the paper's Figures
// 1, 3, 5, 6 and 7 exactly (see tests/sim/figures_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "sim/memory.hpp"

namespace ilp {

struct CycleProfile;  // sim/profile.hpp

// Final architectural register state.
struct RegFile {
  std::vector<std::int64_t> ints;
  std::vector<double> fps;

  [[nodiscard]] std::int64_t get_int(std::uint32_t id) const {
    return id < ints.size() ? ints[id] : 0;
  }
  [[nodiscard]] double get_fp(std::uint32_t id) const {
    return id < fps.size() ? fps[id] : 0.0;
  }
};

struct IssueEvent {
  std::uint32_t uid = 0;    // Instruction::uid
  std::uint64_t cycle = 0;  // issue cycle
};

struct SimOptions {
  std::uint64_t max_instructions = 2'000'000'000ull;
  // When set, the first `trace_limit` issue events are recorded.
  std::vector<IssueEvent>* trace = nullptr;
  std::size_t trace_limit = 4096;
  // Initial register values (id -> value); vectors may be shorter than the
  // function's register count.
  std::vector<std::int64_t> init_ints;
  std::vector<double> init_fps;
  // When the head instruction is interlocked, jump the clock straight to the
  // cycle its last blocking operand becomes ready instead of re-evaluating it
  // every cycle.  Observable behaviour (cycles, stall_cycles, trace, memory,
  // registers) is identical either way — in-order issue means no later
  // instruction can issue while the head stalls; tests/sim/cycle_skip_test.cpp
  // enforces the equivalence.  Off switches back to per-cycle evaluation.
  bool skip_stall_cycles = true;
  // When non-null, the run attributes every cycle x issue-slot to one cause
  // of the closed taxonomy in sim/profile.hpp (reset() is called on entry).
  // The profiled run's observable output (cycles, stalls, trace, registers,
  // memory) is byte-identical to an unprofiled run: the two paths are one
  // `if constexpr` template, so profile == nullptr pays nothing — no extra
  // state, no allocation, no per-issue bookkeeping.  Only meaningful when
  // the run succeeds (res.ok); a failed run leaves a partial profile.
  CycleProfile* profile = nullptr;
};

struct SimResult {
  bool ok = false;
  std::string error;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  // dynamically issued
  std::uint64_t branches = 0;      // dynamic control instructions
  std::uint64_t stall_cycles = 0;  // cycles where slot 0 could not issue
  RegFile regs;
};

class Simulator {
 public:
  Simulator(const MachineModel& machine, SimOptions options = {})
      : machine_(machine), options_(std::move(options)) {}

  // Runs `fn` to RET, mutating `mem`.  The function's entry point is its
  // first block in layout order.
  [[nodiscard]] SimResult run(const Function& fn, Memory& mem) const;

 private:
  // kProfile selects the cycle-accounting instrumentation at compile time;
  // run() dispatches on options_.profile.
  template <bool kProfile>
  [[nodiscard]] SimResult run_impl(const Function& fn, Memory& mem) const;

  MachineModel machine_;
  SimOptions options_;
};

// Deterministically fills every array of `fn` with pseudo-random data (seeded
// by array name) so all transformation levels of the same source loop observe
// identical inputs.  Int arrays get small positive ints; fp arrays get values
// in (0, 2).
void seed_arrays(const Function& fn, Memory& mem, std::uint64_t seed = 0x9e3779b97f4a7c15ull);

// Convenience for differential tests: runs and returns (result, memory).
struct RunOutcome {
  SimResult result;
  Memory memory;
};
RunOutcome run_seeded(const Function& fn, const MachineModel& machine,
                      SimOptions options = {});

// Compares two runs' observable behaviour: final memory images and the
// function's declared live-out registers.  Returns an empty string when
// equivalent, else a human-readable difference.
std::string compare_observable(const Function& fn, const RunOutcome& a, const RunOutcome& b,
                               double fp_tolerance = 1e-9);

}  // namespace ilp
