// Simulated data memory.
//
// Byte addresses key logical cells: every distinct address used by the
// program denotes one 64-bit cell (the workloads address arrays at a fixed
// element stride, so cells never overlap).  Stores record raw bits; integer
// and floating loads reinterpret them, matching a real memory.  The paper
// assumes a 100% cache hit rate, so timing is uniform and lives in the
// simulator, not here.
#pragma once

#include <bit>
#include <cstdint>
#include <unordered_map>

namespace ilp {

class Memory {
 public:
  void store_int(std::int64_t addr, std::int64_t v) {
    cells_[addr] = std::bit_cast<std::uint64_t>(v);
  }
  void store_fp(std::int64_t addr, double v) {
    cells_[addr] = std::bit_cast<std::uint64_t>(v);
  }
  [[nodiscard]] std::int64_t load_int(std::int64_t addr) const {
    const auto it = cells_.find(addr);
    return it == cells_.end() ? 0 : std::bit_cast<std::int64_t>(it->second);
  }
  [[nodiscard]] double load_fp(std::int64_t addr) const {
    const auto it = cells_.find(addr);
    return it == cells_.end() ? 0.0 : std::bit_cast<double>(it->second);
  }

  [[nodiscard]] std::size_t footprint() const { return cells_.size(); }
  [[nodiscard]] const std::unordered_map<std::int64_t, std::uint64_t>& cells() const {
    return cells_;
  }
  [[nodiscard]] bool operator==(const Memory& o) const { return cells_ == o.cells_; }

 private:
  std::unordered_map<std::int64_t, std::uint64_t> cells_;
};

}  // namespace ilp
