// Simulated data memory.
//
// Byte addresses key logical cells: every distinct address used by the
// program denotes one 64-bit cell (the workloads address arrays at a fixed
// element stride, so cells never overlap).  Stores record raw bits; integer
// and floating loads reinterpret them, matching a real memory.  The paper
// assumes a 100% cache hit rate, so timing is uniform and lives in the
// simulator, not here.
//
// Cells live in an open-addressed flat table rather than std::unordered_map:
// every simulated load and store lands here, so the per-access node
// allocation and pointer chase would otherwise dominate the interpreter loop.
// The table uses a locality-preserving hash (addresses stride 4 bytes, so
// addr >> 2): the workloads sweep arrays sequentially, and the shift keeps a
// sequential address walk a sequential — prefetchable — table walk instead
// of one cache miss per element.
#pragma once

#include <bit>
#include <cstdint>

#include "support/flat_map.hpp"

namespace ilp {

class Memory {
 public:
  void store_int(std::int64_t addr, std::int64_t v) {
    cells_.put(addr, std::bit_cast<std::uint64_t>(v));
  }
  void store_fp(std::int64_t addr, double v) {
    cells_.put(addr, std::bit_cast<std::uint64_t>(v));
  }
  [[nodiscard]] std::int64_t load_int(std::int64_t addr) const {
    const std::uint64_t* p = cells_.find(addr);
    return p == nullptr ? 0 : std::bit_cast<std::int64_t>(*p);
  }
  [[nodiscard]] double load_fp(std::int64_t addr) const {
    const std::uint64_t* p = cells_.find(addr);
    return p == nullptr ? 0.0 : std::bit_cast<double>(*p);
  }

  // Grows the cell table so `n` cells fit without rehashing; used by
  // seed_arrays, which knows the total array footprint up front.
  void reserve(std::size_t n) { cells_.reserve(n); }

  [[nodiscard]] std::size_t footprint() const { return cells_.size(); }

  // Calls fn(addr, raw_bits) for every written cell, in unspecified order.
  template <class F>
  void for_each_cell(F&& fn) const {
    cells_.for_each(fn);
  }

  [[nodiscard]] bool operator==(const Memory& o) const {
    if (cells_.size() != o.cells_.size()) return false;
    bool equal = true;
    cells_.for_each([&](std::int64_t addr, std::uint64_t bits) {
      const std::uint64_t* p = o.cells_.find(addr);
      if (p == nullptr || *p != bits) equal = false;
    });
    return equal;
  }

 private:
  BasicFlatMap64<ShiftHash<2>> cells_;
};

}  // namespace ilp
