// Cycle-accounting profile for the in-order superscalar simulator.
//
// Every simulated cycle offers exactly `issue_width` issue slots.  When
// profiling is on, the simulator attributes each slot to exactly one cause
// in a closed taxonomy, so the per-cause totals are a *partition* of the
// machine's whole capacity:
//
//   issued          the slot carried an instruction
//   raw_wait        register interlock whose latest producer was not a load
//   mem_wait        memory latency: a load waiting on a store to the same
//                   address, or an interlock whose latest producer was a load
//   resource_width  structural issue restriction (the cycle's branch slot was
//                   already taken when a control instruction reached the head)
//   branch_fetch    slots squashed because a taken branch/jump ended the
//                   cycle (redirect + fetch latency)
//   drain           trailing slots of the final cycle, after RET issued
//
// Attribution priority when several conditions coincide (one cause per slot):
// the branch-slot restriction is checked before interlocks, so a control
// instruction that is both slot-blocked and operand-blocked counts as
// resource_width; among simultaneous interlocks the *latest* blocking
// constraint names the cause, and a memory constraint wins a tie with a
// register constraint (memory is the deeper reason the operand is late).
//
// The conservation invariant — sum over causes of slots[c] == width * cycles,
// exactly, with the per-block matrix and the occupancy histogram summing to
// the same totals — is what makes the profile a differential-strength oracle
// rather than telemetry; check_conservation() verifies every identity and
// tests/sim/profile_test.cpp enforces it across the workload grid.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

namespace ilp {

class Function;

enum class StallCause : std::uint8_t {
  Issued = 0,
  RawWait,
  MemWait,
  ResourceWidth,
  BranchFetch,
  Drain,
};
inline constexpr int kNumStallCauses = 6;

// Wire/exposition name: "issued", "raw_wait", "mem_wait", "resource_width",
// "branch_fetch", "drain".
[[nodiscard]] const char* stall_cause_name(StallCause c);

struct CycleProfile {
  int width = 0;             // issue width the run was profiled at
  std::uint64_t cycles = 0;  // == SimResult::cycles of the same run
  // Global per-cause totals; slots[Issued] == dynamic instruction count.
  std::array<std::uint64_t, kNumStallCauses> slots{};
  // Per-block attribution in layout order: stalled slots land on the block
  // of the instruction that blocked (for branch_fetch, the branch's block).
  std::vector<std::string> block_names;
  std::vector<std::array<std::uint64_t, kNumStallCauses>> block_slots;
  // Per-opcode attribution: slots issued as this opcode, and slots lost
  // while an instruction of this opcode was the blocked head (or the
  // redirecting branch / the RET for drain).
  std::array<std::uint64_t, kNumOpcodes> issued_by_opcode{};
  std::array<std::uint64_t, kNumOpcodes> stall_by_opcode{};
  // occupancy[k]: cycles that issued exactly k instructions (width+1 bins).
  std::vector<std::uint64_t> occupancy;

  // Re-binds the profile to one run: zeroes every counter and sizes the
  // per-block matrix and occupancy histogram for (fn, machine width).
  void reset(int machine_width, const Function& fn);

  [[nodiscard]] std::uint64_t total_slots() const;
  [[nodiscard]] std::uint64_t stalled_slots() const {
    return total_slots() - slots[0];
  }
  // Share of all slots attributed to `c`, in [0, 1].
  [[nodiscard]] double fraction(StallCause c) const;

  // Verifies every accounting identity; "" when the profile conserves:
  //   sum(slots)              == width * cycles
  //   per-block column sums   == slots
  //   sum(occupancy)          == cycles
  //   sum(k * occupancy[k])   == slots[issued] == sum(issued_by_opcode)
  //   sum(stall_by_opcode)    == stalled_slots()
  [[nodiscard]] std::string check_conservation() const;

  // Full JSON object (totals, occupancy, per-block, nonzero opcodes).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace ilp
