// Log-bucketed latency histograms (HDR-style log-linear buckets).
//
// The bucket layout is log-linear: values 0..31 get exact buckets, then each
// power-of-two octave is split into 32 linear sub-buckets, so the relative
// width of any bucket is at most 1/32 (~3.1%) of its lower bound.  That is
// enough resolution to report p50/p90/p99/p999 of service latencies within a
// few percent while keeping the bucket array small and fixed-size — no
// allocation ever happens on the record path.
//
// Recording is lock-free and contention-cheap: the bucket array is sharded,
// each thread hashes to one shard (assigned once, round-robin), and a record
// is three relaxed atomic adds on that shard.  Snapshots merge the shards;
// they are not a linearizable cut across concurrent writers, but every
// completed record before the snapshot is included, which is all a metrics
// scrape needs.
//
// Values are dimensionless uint64s; the service records nanoseconds and the
// Prometheus exposition rescales to seconds (see obs/prometheus.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ilp::obs {

class Histogram {
 public:
  // 32 sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  // Octaves above the linear range; covers values up to ~2^42 (over an hour
  // in nanoseconds).  Larger values clamp into the last bucket.
  static constexpr int kOctaves = 38;
  static constexpr std::size_t kBucketCount =
      kSubCount + static_cast<std::size_t>(kOctaves) * kSubCount;
  static constexpr unsigned kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Adds one sample.  Lock-free; safe from any thread.
  void record(std::uint64_t value);

  // Index of the bucket `value` lands in, and the inclusive value range
  // [lower, upper] a bucket covers.  Exposed for the boundary tests.
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max_value = 0;  // upper bound of the highest non-empty bucket
    // Non-empty buckets only, ascending: (inclusive upper bound, count).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    // Quantile estimate (q in [0, 1]); returns the midpoint of the bucket
    // holding the rank, 0 for an empty histogram.  Relative error is bounded
    // by half a bucket width (~1.6% beyond the linear range).
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const;
  // Zeroes all shards.  Not linearizable against concurrent record()s.
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  };
  Shard& shard_for_thread();

  std::array<Shard, kShards> shards_{};
};

}  // namespace ilp::obs
