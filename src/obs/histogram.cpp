#include "obs/histogram.hpp"

#include <bit>

namespace ilp::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int hi = 63 - std::countl_zero(value);
  const int shift = hi - kSubBits;
  const std::size_t index =
      (static_cast<std::size_t>(shift) + 1) * kSubCount +
      static_cast<std::size_t>((value >> shift) & (kSubCount - 1));
  return index < kBucketCount ? index : kBucketCount - 1;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubCount) return index;
  const std::uint64_t shift = (index >> kSubBits) - 1;
  const std::uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << shift;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubCount) return index;
  const std::uint64_t shift = (index >> kSubBits) - 1;
  return bucket_lower(index) + (1ull << shift) - 1;
}

Histogram::Shard& Histogram::shard_for_thread() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[idx];
}

void Histogram::record(std::uint64_t value) {
  Shard& s = shard_for_thread();
  s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  std::array<std::uint64_t, kBucketCount> merged{};
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const std::uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
      if (c != 0) merged[i] += c;
    }
  }
  for (std::size_t i = 0; i < kBucketCount; ++i)
    if (merged[i] != 0) {
      out.buckets.emplace_back(bucket_upper(i), merged[i]);
      out.max_value = bucket_upper(i);
    }
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank convention as a sorted vector: index q*(n-1), rounded down.
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (const auto& [upper, c] : buckets) {
    seen += c;
    if (seen > rank) {
      const std::size_t idx = bucket_index(upper);
      return (static_cast<double>(bucket_lower(idx)) +
              static_cast<double>(upper)) /
             2.0;
    }
  }
  return static_cast<double>(max_value);
}

}  // namespace ilp::obs
