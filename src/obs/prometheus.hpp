// Prometheus text-exposition (version 0.0.4) rendering helpers.
//
// These are pure string builders: the metrics owner (engine::MetricsRegistry,
// server::Service) walks its snapshots and appends families here.  Internal
// metric names use dots as namespace separators ("pass.unroll",
// "server.request_latency"); the exposition sanitizes them to the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset Prometheus requires, so "pass.unroll"
// scrapes as "pass_unroll".
//
// Histograms follow the Prometheus histogram convention exactly: cumulative
// `_bucket{le="..."}` series ending with le="+Inf", plus `_sum` and `_count`.
// Time histograms are recorded in nanoseconds; pass scale = 1e-9 to expose
// them in seconds (the Prometheus base unit).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace ilp::obs::prom {

// Maps every character outside [a-zA-Z0-9_:] to '_'; prefixes '_' if the
// first character is a digit.
[[nodiscard]] std::string sanitize_name(std::string_view name);

void append_counter(std::string& out, std::string_view name, std::uint64_t value,
                    std::string_view help = {});
void append_gauge(std::string& out, std::string_view name, double value,
                  std::string_view help = {});
// `scale` converts recorded values to the exposed unit (1e-9: ns -> s).
void append_histogram(std::string& out, std::string_view name,
                      const Histogram::Snapshot& snap, double scale = 1.0,
                      std::string_view help = {});

// Labeled families (one series per label value — the per-shard gauges).
// Declare the family once with begin_*_family, then append every sample:
//
//   begin_gauge_family(out, "server.shard_queue_depth", "...");
//   for (i : shards) append_gauge_sample(out, "server.shard_queue_depth",
//                                        "shard", std::to_string(i), depth[i]);
//
// Label values are escaped per the exposition rules (backslash, quote, \n).
void begin_counter_family(std::string& out, std::string_view name,
                          std::string_view help = {});
void begin_gauge_family(std::string& out, std::string_view name,
                        std::string_view help = {});
void append_counter_sample(std::string& out, std::string_view name,
                           std::string_view label, std::string_view label_value,
                           std::uint64_t value);
void append_gauge_sample(std::string& out, std::string_view name,
                         std::string_view label, std::string_view label_value,
                         double value);

}  // namespace ilp::obs::prom
