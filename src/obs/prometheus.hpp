// Prometheus text-exposition (version 0.0.4) rendering helpers.
//
// These are pure string builders: the metrics owner (engine::MetricsRegistry,
// server::Service) walks its snapshots and appends families here.  Internal
// metric names use dots as namespace separators ("pass.unroll",
// "server.request_latency"); the exposition sanitizes them to the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset Prometheus requires, so "pass.unroll"
// scrapes as "pass_unroll".
//
// Histograms follow the Prometheus histogram convention exactly: cumulative
// `_bucket{le="..."}` series ending with le="+Inf", plus `_sum` and `_count`.
// Time histograms are recorded in nanoseconds; pass scale = 1e-9 to expose
// them in seconds (the Prometheus base unit).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace ilp::obs::prom {

// Maps every character outside [a-zA-Z0-9_:] to '_'; prefixes '_' if the
// first character is a digit.
[[nodiscard]] std::string sanitize_name(std::string_view name);

void append_counter(std::string& out, std::string_view name, std::uint64_t value,
                    std::string_view help = {});
void append_gauge(std::string& out, std::string_view name, double value,
                  std::string_view help = {});
// `scale` converts recorded values to the exposed unit (1e-9: ns -> s).
void append_histogram(std::string& out, std::string_view name,
                      const Histogram::Snapshot& snap, double scale = 1.0,
                      std::string_view help = {});

}  // namespace ilp::obs::prom
