#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cstdio>

namespace ilp::obs::prom {

namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_help_and_type(std::string& out, const std::string& name,
                          std::string_view help, const char* type) {
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out.append(help);
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (const char c : name) out += name_char_ok(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

void append_counter(std::string& out, std::string_view name, std::uint64_t value,
                    std::string_view help) {
  const std::string n = sanitize_name(name);
  append_help_and_type(out, n, help, "counter");
  char buf[32];
  std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
  out += n;
  out += buf;
}

void append_gauge(std::string& out, std::string_view name, double value,
                  std::string_view help) {
  const std::string n = sanitize_name(name);
  append_help_and_type(out, n, help, "gauge");
  out += n;
  out += ' ';
  append_double(out, value);
  out += '\n';
}

namespace {

void append_sample_head(std::string& out, std::string_view name,
                        std::string_view label, std::string_view label_value) {
  out += sanitize_name(name);
  out += '{';
  out += sanitize_name(label);
  out += "=\"";
  for (const char c : label_value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += "\"} ";
}

}  // namespace

void begin_counter_family(std::string& out, std::string_view name,
                          std::string_view help) {
  append_help_and_type(out, sanitize_name(name), help, "counter");
}

void begin_gauge_family(std::string& out, std::string_view name,
                        std::string_view help) {
  append_help_and_type(out, sanitize_name(name), help, "gauge");
}

void append_counter_sample(std::string& out, std::string_view name,
                           std::string_view label, std::string_view label_value,
                           std::uint64_t value) {
  append_sample_head(out, name, label, label_value);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 "\n", value);
  out += buf;
}

void append_gauge_sample(std::string& out, std::string_view name,
                         std::string_view label, std::string_view label_value,
                         double value) {
  append_sample_head(out, name, label, label_value);
  append_double(out, value);
  out += '\n';
}

void append_histogram(std::string& out, std::string_view name,
                      const Histogram::Snapshot& snap, double scale,
                      std::string_view help) {
  const std::string n = sanitize_name(name);
  append_help_and_type(out, n, help, "histogram");
  std::uint64_t cumulative = 0;
  char buf[32];
  for (const auto& [upper, count] : snap.buckets) {
    cumulative += count;
    out += n;
    out += "_bucket{le=\"";
    append_double(out, static_cast<double>(upper) * scale);
    out += "\"} ";
    std::snprintf(buf, sizeof buf, "%" PRIu64 "\n", cumulative);
    out += buf;
  }
  out += n;
  out += "_bucket{le=\"+Inf\"} ";
  std::snprintf(buf, sizeof buf, "%" PRIu64 "\n", snap.count);
  out += buf;
  out += n;
  out += "_sum ";
  append_double(out, static_cast<double>(snap.sum) * scale);
  out += '\n';
  out += n;
  out += "_count ";
  std::snprintf(buf, sizeof buf, "%" PRIu64 "\n", snap.count);
  out += buf;
}

}  // namespace ilp::obs::prom
