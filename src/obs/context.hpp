// Request-scoped context: a request id plus an optional trace sink, carried
// in a thread-local and re-established on whichever thread does the work.
//
// The service mints a RequestContext per wire request in handle_line and
// installs it with a RequestScope; the engine job that executes the request's
// cell captures the context by shared_ptr and installs its own RequestScope
// on the worker thread, so everything downstream — log lines, trace spans,
// pass instrumentation — sees the same request id without any plumbing
// through the compile pipeline's signatures.
//
// TraceSink is the abstract span consumer implemented by engine::TraceRecorder
// (obs cannot depend on engine; engine links obs for the histograms).  A null
// sink means the request is not traced: SpanScope then costs one thread-local
// load and a branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace ilp::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // Microseconds since the sink's epoch.
  [[nodiscard]] virtual std::uint64_t now_us() const = 0;
  virtual void record_span(std::string_view name, std::string_view category,
                           std::uint64_t ts_us, std::uint64_t dur_us,
                           std::string_view request_id) = 0;
  // One simulated issue slot: instruction `op_name` issued in `cycle` at
  // slot position `slot` (0-based within the cycle).  Sinks that render
  // timelines map these onto per-slot lanes; the default drops them so
  // span-only sinks are unaffected.  Simulated cycles, not wall time.
  virtual void record_issue_slot(std::string_view op_name, std::uint64_t cycle,
                                 int slot, std::string_view request_id) {
    (void)op_name;
    (void)cycle;
    (void)slot;
    (void)request_id;
  }
};

struct RequestContext {
  std::string request_id;
  TraceSink* sink = nullptr;  // non-null => spans are recorded
};

// The context installed on this thread, or nullptr outside any request.
[[nodiscard]] const RequestContext* current_request();
// "" outside any request; the logger stamps this onto every line.
[[nodiscard]] std::string_view current_request_id();

// RAII installer; nests (the previous context is restored on destruction).
class RequestScope {
 public:
  explicit RequestScope(const RequestContext* ctx);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  const RequestContext* prev_;
};

// Records [construction, destruction) as a span against the current
// request's sink.  No-op (one TLS load) when the request is untraced or
// there is no request.  `name` and `category` must outlive the scope —
// callers pass string literals.
class SpanScope {
 public:
  SpanScope(std::string_view name, std::string_view category);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const RequestContext* ctx_;  // null or sink-less => inactive
  std::string_view name_;
  std::string_view category_;
  std::uint64_t start_us_ = 0;
};

}  // namespace ilp::obs
