#include "obs/context.hpp"

namespace ilp::obs {

namespace {
thread_local const RequestContext* t_current = nullptr;
}  // namespace

const RequestContext* current_request() { return t_current; }

std::string_view current_request_id() {
  return t_current == nullptr ? std::string_view{} : t_current->request_id;
}

RequestScope::RequestScope(const RequestContext* ctx) : prev_(t_current) {
  t_current = ctx;
}

RequestScope::~RequestScope() { t_current = prev_; }

SpanScope::SpanScope(std::string_view name, std::string_view category)
    : ctx_(t_current), name_(name), category_(category) {
  if (ctx_ != nullptr && ctx_->sink != nullptr) start_us_ = ctx_->sink->now_us();
}

SpanScope::~SpanScope() {
  if (ctx_ != nullptr && ctx_->sink != nullptr)
    ctx_->sink->record_span(name_, category_, start_us_,
                            ctx_->sink->now_us() - start_us_, ctx_->request_id);
}

}  // namespace ilp::obs
