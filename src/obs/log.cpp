#include "obs/log.hpp"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "obs/context.hpp"

namespace ilp::obs {

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "info";
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  for (const LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off})
    if (name == log_level_name(l)) {
      *out = l;
      return true;
    }
  return false;
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ISO-8601 UTC with milliseconds: 2026-08-06T17:01:02.345Z
void append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  out.append(buf, n);
  std::snprintf(buf, sizeof buf, ".%03dZ", static_cast<int>(ms));
  out += buf;
}

void append_field_value_json(std::string& out, const LogField& f) {
  char buf[48];
  switch (f.kind) {
    case LogField::Kind::Str:
      out += '"';
      append_json_escaped(out, f.sval);
      out += '"';
      break;
    case LogField::Kind::Int:
      std::snprintf(buf, sizeof buf, "%" PRId64, f.ival);
      out += buf;
      break;
    case LogField::Kind::Uint:
      std::snprintf(buf, sizeof buf, "%" PRIu64, f.uval);
      out += buf;
      break;
    case LogField::Kind::Double:
      std::snprintf(buf, sizeof buf, "%.6g", f.dval);
      out += buf;
      break;
    case LogField::Kind::Bool: out += f.bval ? "true" : "false"; break;
  }
}

void append_field_value_text(std::string& out, const LogField& f) {
  char buf[48];
  switch (f.kind) {
    case LogField::Kind::Str: out.append(f.sval); break;
    case LogField::Kind::Int:
      std::snprintf(buf, sizeof buf, "%" PRId64, f.ival);
      out += buf;
      break;
    case LogField::Kind::Uint:
      std::snprintf(buf, sizeof buf, "%" PRIu64, f.uval);
      out += buf;
      break;
    case LogField::Kind::Double:
      std::snprintf(buf, sizeof buf, "%.6g", f.dval);
      out += buf;
      break;
    case LogField::Kind::Bool: out += f.bval ? "true" : "false"; break;
  }
}

}  // namespace

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::FILE* f) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = f;
}

void Logger::log(LogLevel level, std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::Off) return;

  const std::string_view req = current_request_id();
  std::string line;
  line.reserve(128);
  if (json()) {
    line += "{\"ts\":\"";
    append_timestamp(line);
    line += "\",\"level\":\"";
    line += log_level_name(level);
    line += "\",\"msg\":\"";
    append_json_escaped(line, msg);
    line += '"';
    if (!req.empty()) {
      line += ",\"req\":\"";
      append_json_escaped(line, req);
      line += '"';
    }
    for (const LogField& f : fields) {
      line += ",\"";
      append_json_escaped(line, f.key);
      line += "\":";
      append_field_value_json(line, f);
    }
    line += "}\n";
  } else {
    append_timestamp(line);
    char lvl[16];
    std::snprintf(lvl, sizeof lvl, " %-5s ", log_level_name(level));
    line += lvl;
    line.append(msg);
    if (!req.empty()) {
      line += "  req=";
      line.append(req);
    }
    for (const LogField& f : fields) {
      line += (&f == fields.begin() && req.empty()) ? "  " : " ";
      line.append(f.key);
      line += '=';
      append_field_value_text(line, f);
    }
    line += '\n';
  }

  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    std::FILE* out = sink_ != nullptr ? sink_ : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::warn_rate_limited(std::string_view key, std::string_view msg,
                               std::initializer_list<LogField> fields,
                               std::uint64_t max_per_sec) {
  if (!enabled(LogLevel::Warn)) return;
  const auto now_sec = std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  std::uint64_t suppressed_before = 0;
  {
    std::lock_guard<std::mutex> lock(rate_mu_);
    auto it = rate_.find(key);
    if (it == rate_.end())
      it = rate_.emplace(std::string(key), RateState{}).first;
    RateState& st = it->second;
    if (st.window_sec != now_sec) {
      st.window_sec = now_sec;
      st.in_window = 0;
      suppressed_before = st.suppressed;
      st.suppressed = 0;
    }
    if (st.in_window >= max_per_sec) {
      ++st.suppressed;
      return;
    }
    ++st.in_window;
  }
  if (suppressed_before > 0)
    log(LogLevel::Warn, "rate-limited warn lines suppressed",
        {field("rate_key", key), field("suppressed", suppressed_before)});
  log(LogLevel::Warn, msg, fields);
}

}  // namespace ilp::obs
