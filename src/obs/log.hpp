// Structured, leveled, thread-safe logging.
//
// One process-wide Logger (plus constructible instances for tests) writes
// single-line records to a FILE* sink in either human text or JSON-lines
// form.  A record is a level, a message, and zero or more typed fields;
// the current request id (obs/context.hpp) is stamped on automatically, so
// every line a request produces — on the handler thread or a pool worker —
// carries the same id.
//
//   log_info("request admitted", {field("key", key), field("inflight", n)});
//
//   text:  2026-08-06T17:01:02.345Z info  request admitted  req=r-17 key=9f inflight=3
//   json:  {"ts":"...","level":"info","msg":"request admitted","req":"r-17",
//          "key":"9f","inflight":3}
//
// Lines are formatted into a local buffer and written with a single fwrite
// under a mutex, so concurrent writers interleave whole lines, never bytes.
// Level filtering is one relaxed atomic load; a disabled level costs nothing
// else.  warn_rate_limited() bounds a hot warn site to a per-key budget per
// second and reports how many lines it swallowed when the window reopens.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace ilp::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

[[nodiscard]] const char* log_level_name(LogLevel l);
// Parses "debug"|"info"|"warn"|"error"|"off"; returns false on anything else.
bool parse_log_level(std::string_view name, LogLevel* out);

// A typed key=value pair.  Keys must be literals (or otherwise outlive the
// log call); values are copied into the formatted line immediately.
struct LogField {
  enum class Kind { Str, Int, Uint, Double, Bool };
  std::string_view key;
  Kind kind = Kind::Str;
  std::string_view sval;
  std::int64_t ival = 0;
  std::uint64_t uval = 0;
  double dval = 0.0;
  bool bval = false;
};

inline LogField field(std::string_view key, std::string_view v) {
  LogField f{key, LogField::Kind::Str, v, 0, 0, 0.0, false};
  return f;
}
inline LogField field(std::string_view key, const char* v) {
  return field(key, std::string_view(v));
}
inline LogField field(std::string_view key, std::int64_t v) {
  LogField f{key, LogField::Kind::Int, {}, v, 0, 0.0, false};
  return f;
}
inline LogField field(std::string_view key, int v) {
  return field(key, static_cast<std::int64_t>(v));
}
inline LogField field(std::string_view key, std::uint64_t v) {
  LogField f{key, LogField::Kind::Uint, {}, 0, v, 0.0, false};
  return f;
}
inline LogField field(std::string_view key, double v) {
  LogField f{key, LogField::Kind::Double, {}, 0, 0, v, false};
  return f;
}
inline LogField field(std::string_view key, bool v) {
  LogField f{key, LogField::Kind::Bool, {}, 0, 0, 0.0, v};
  return f;
}

class Logger {
 public:
  static Logger& global();

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel l) { level_.store(static_cast<int>(l), std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel l) const {
    return static_cast<int>(l) >= level_.load(std::memory_order_relaxed);
  }
  void set_json(bool on) { json_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool json() const { return json_.load(std::memory_order_relaxed); }
  // Redirects output (default stderr).  Not owned; caller keeps it open for
  // the logger's lifetime.
  void set_sink(std::FILE* f);

  void log(LogLevel level, std::string_view msg,
           std::initializer_list<LogField> fields = {});

  // At most `max_per_sec` lines per distinct key per wall-clock second; the
  // first line after a suppression window carries a `suppressed` field.
  void warn_rate_limited(std::string_view key, std::string_view msg,
                         std::initializer_list<LogField> fields = {},
                         std::uint64_t max_per_sec = 5);

  [[nodiscard]] std::uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  struct RateState {
    std::int64_t window_sec = -1;
    std::uint64_t in_window = 0;
    std::uint64_t suppressed = 0;
  };

  std::atomic<int> level_{static_cast<int>(LogLevel::Info)};
  std::atomic<bool> json_{false};
  std::atomic<std::uint64_t> lines_{0};
  std::mutex sink_mu_;
  std::FILE* sink_ = nullptr;  // nullptr = stderr
  std::mutex rate_mu_;
  std::map<std::string, RateState, std::less<>> rate_;
};

// Convenience wrappers on the global logger.
inline void log_debug(std::string_view msg, std::initializer_list<LogField> f = {}) {
  Logger::global().log(LogLevel::Debug, msg, f);
}
inline void log_info(std::string_view msg, std::initializer_list<LogField> f = {}) {
  Logger::global().log(LogLevel::Info, msg, f);
}
inline void log_warn(std::string_view msg, std::initializer_list<LogField> f = {}) {
  Logger::global().log(LogLevel::Warn, msg, f);
}
inline void log_error(std::string_view msg, std::initializer_list<LogField> f = {}) {
  Logger::global().log(LogLevel::Error, msg, f);
}

}  // namespace ilp::obs
