#include "sched/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <queue>
#include <utility>

#include "engine/metrics.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

// Ready nodes are held in max-heaps keyed by (height, lowest-index-first),
// packed into one uint64 so the heap compares single integers: greater
// height wins, ties go to the smaller original index — exactly the
// scan-and-erase selection rule of the reference scheduler
// (sched/reference.cpp), which tests/sched/scheduler_diff_test.cpp holds
// this implementation to.
using ReadyHeap = std::priority_queue<std::uint64_t>;

std::uint64_t pack_ready(int height, std::uint32_t idx) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(height)) << 32) |
         (0xffffffffu - idx);
}
std::uint32_t unpack_index(std::uint64_t key) {
  return 0xffffffffu - static_cast<std::uint32_t>(key);
}

// Ready-but-not-yet-issuable nodes, min-heap on their earliest issue cycle.
using PendingHeap =
    std::priority_queue<std::pair<int, std::uint32_t>,
                        std::vector<std::pair<int, std::uint32_t>>,
                        std::greater<std::pair<int, std::uint32_t>>>;

}  // namespace

BlockSchedule list_schedule(const DepGraph& g, const Function& fn, BlockId block,
                            const MachineModel& machine, Arena* scratch) {
  const Block& blk = fn.block(block);
  const std::size_t n = g.num_nodes();
  BlockSchedule sched;
  sched.issue_time.assign(n, 0);
  sched.order.reserve(n);

  // Working arrays: bump-allocated from the compile context's arena when one
  // is supplied (rewound on return by the scope), heap otherwise.
  std::optional<Arena::Scope> scope;
  std::vector<int> heap_scratch;
  int* unscheduled_preds = nullptr;
  int* earliest = nullptr;
  if (scratch != nullptr && n > 0) {
    scope.emplace(*scratch);
    unscheduled_preds = scratch->alloc_array<int>(n);
    earliest = scratch->alloc_array<int>(n);
  } else {
    heap_scratch.assign(2 * n, 0);
    unscheduled_preds = heap_scratch.data();
    earliest = heap_scratch.data() + n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    unscheduled_preds[i] = static_cast<int>(g.preds(i).size());
    earliest[i] = 0;
  }

  // Two ready heaps keep the branch-slot restriction O(1): control
  // instructions compete from their own heap only while a branch slot is
  // free.  Nodes whose earliest cycle is still in the future wait in
  // `pending`; once ready, a node's earliest is final (all producers have
  // been scheduled), so it moves between the structures at most once.
  ReadyHeap avail;
  ReadyHeap avail_ctrl;
  PendingHeap pending;
  int cycle = 0;
  const auto push_ready = [&](std::uint32_t i) {
    if (earliest[i] > cycle) {
      pending.push({earliest[i], i});
    } else {
      (blk.insts[i].is_control() ? avail_ctrl : avail).push(pack_ready(g.height()[i], i));
    }
  };
  for (std::uint32_t i = 0; i < n; ++i)
    if (unscheduled_preds[i] == 0) push_ready(i);

  std::size_t remaining = n;
  while (remaining > 0) {
    while (!pending.empty() && pending.top().first <= cycle) {
      const std::uint32_t i = pending.top().second;
      pending.pop();
      (blk.insts[i].is_control() ? avail_ctrl : avail).push(pack_ready(g.height()[i], i));
    }

    int slots = machine.issue_width;
    int branch_slots = machine.branch_slots;
    while (slots > 0) {
      // Choose the ready node with the greatest height (critical path first);
      // tie-break on original position for stability.
      ReadyHeap* heap = nullptr;
      if (!avail.empty()) heap = &avail;
      if (branch_slots > 0 && !avail_ctrl.empty() &&
          (heap == nullptr || avail_ctrl.top() > avail.top()))
        heap = &avail_ctrl;
      if (heap == nullptr) break;
      const std::uint32_t node = unpack_index(heap->top());
      heap->pop();

      sched.issue_time[node] = cycle;
      sched.order.push_back(node);
      --slots;
      if (blk.insts[node].is_control()) --branch_slots;
      --remaining;

      for (std::uint32_t ei : g.out_edges(node)) {
        const DepEdge& e = g.edge(ei);
        earliest[e.to] = std::max(earliest[e.to], cycle + e.latency);
        if (--unscheduled_preds[e.to] == 0) push_ready(e.to);
      }
    }
    if (remaining == 0) break;
    ++cycle;
    // Nothing issuable until the next pending node matures: skip the dead
    // cycles (issue times are unaffected — slots reset every cycle).
    if (avail.empty() && avail_ctrl.empty() && !pending.empty() &&
        pending.top().first > cycle)
      cycle = pending.top().first;
  }
  sched.makespan = n == 0 ? 0 : sched.issue_time[sched.order.back()] + 1;
  return sched;
}

namespace {

void apply_schedule(Function& fn, BlockId block, const BlockSchedule& sched) {
  Block& blk = fn.block(block);
  std::vector<Instruction> out;
  out.reserve(blk.insts.size());
  for (std::uint32_t idx : sched.order) out.push_back(blk.insts[idx]);
  blk.insts = std::move(out);
}

}  // namespace

ScheduleAnalyses::ScheduleAnalyses(const Function& fn, CompileContext* ctx)
    : cfg(fn, ctx), live(cfg, ctx), preheaders(fn.num_blocks(), kNoBlock),
      scratch(ctx != nullptr ? &ctx->arena() : nullptr) {
  // Preheader of each simple-loop body (for loop-relative disambiguation).
  const Dominators dom(cfg);
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    preheaders[loop.body] = loop.preheader;
}

void schedule_block(Function& fn, BlockId block, const MachineModel& machine,
                    const ScheduleAnalyses& analyses) {
  const DepGraph g(fn, block, machine, analyses.live, analyses.preheaders[block]);
  apply_schedule(fn, block, list_schedule(g, fn, block, machine, analyses.scratch));
}

void schedule_block(Function& fn, BlockId block, const MachineModel& machine) {
  const ScheduleAnalyses analyses(fn);
  schedule_block(fn, block, machine, analyses);
}

void schedule_function(Function& fn, const MachineModel& machine,
                       CompileContext& ctx) {
  const ScheduleAnalyses analyses(fn, &ctx);
  std::size_t scheduled_blocks = 0;
  std::size_t scheduled_insts = 0;
  for (const Block& b : fn.blocks()) {
    if (b.insts.size() < 2) continue;
    schedule_block(fn, b.id, machine, analyses);
    ++scheduled_blocks;
    scheduled_insts += b.insts.size();
  }
  engine::MetricsRegistry::global().add_count("sched.blocks", scheduled_blocks);
  engine::MetricsRegistry::global().add_count("sched.insts", scheduled_insts);
}

void schedule_function(Function& fn, const MachineModel& machine) {
  schedule_function(fn, machine, CompileContext::local());
}

}  // namespace ilp
