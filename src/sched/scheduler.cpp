#include "sched/scheduler.hpp"

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "support/assert.hpp"

namespace ilp {

BlockSchedule list_schedule(const DepGraph& g, const Function& fn, BlockId block,
                            const MachineModel& machine) {
  const Block& blk = fn.block(block);
  const std::size_t n = g.num_nodes();
  BlockSchedule sched;
  sched.issue_time.assign(n, 0);
  sched.order.reserve(n);

  std::vector<int> unscheduled_preds(n, 0);
  std::vector<int> earliest(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    unscheduled_preds[i] = static_cast<int>(g.preds(i).size());

  std::vector<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i)
    if (unscheduled_preds[i] == 0) ready.push_back(i);

  std::size_t remaining = n;
  int cycle = 0;
  while (remaining > 0) {
    int slots = machine.issue_width;
    int branch_slots = machine.branch_slots;
    bool placed_any = true;
    while (placed_any && slots > 0) {
      placed_any = false;
      // Choose the ready node with the greatest height (critical path first);
      // tie-break on original position for stability.
      std::int64_t best = -1;
      for (std::size_t k = 0; k < ready.size(); ++k) {
        const std::uint32_t cand = ready[k];
        if (earliest[cand] > cycle) continue;
        if (blk.insts[cand].is_control() && branch_slots == 0) continue;
        if (best < 0 || g.height()[cand] > g.height()[ready[static_cast<std::size_t>(best)]] ||
            (g.height()[cand] == g.height()[ready[static_cast<std::size_t>(best)]] &&
             cand < ready[static_cast<std::size_t>(best)]))
          best = static_cast<std::int64_t>(k);
      }
      if (best < 0) break;
      const std::uint32_t node = ready[static_cast<std::size_t>(best)];
      ready.erase(ready.begin() + best);

      sched.issue_time[node] = cycle;
      sched.order.push_back(node);
      --slots;
      if (blk.insts[node].is_control()) --branch_slots;
      --remaining;
      placed_any = true;

      for (std::uint32_t ei : g.out_edges(node)) {
        const DepEdge& e = g.edge(ei);
        earliest[e.to] = std::max(earliest[e.to], cycle + e.latency);
        if (--unscheduled_preds[e.to] == 0) ready.push_back(e.to);
      }
    }
    ++cycle;
  }
  sched.makespan = n == 0 ? 0 : sched.issue_time[sched.order.back()] + 1;
  return sched;
}

namespace {

void apply_schedule(Function& fn, BlockId block, const BlockSchedule& sched) {
  Block& blk = fn.block(block);
  std::vector<Instruction> out;
  out.reserve(blk.insts.size());
  for (std::uint32_t idx : sched.order) out.push_back(blk.insts[idx]);
  blk.insts = std::move(out);
}

}  // namespace

namespace {

// Preheader of each simple-loop body (for loop-relative disambiguation).
std::vector<BlockId> loop_preheaders(const Function& fn, const Cfg& cfg) {
  std::vector<BlockId> pre(fn.num_blocks(), kNoBlock);
  const Dominators dom(cfg);
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    pre[loop.body] = loop.preheader;
  return pre;
}

}  // namespace

void schedule_block(Function& fn, BlockId block, const MachineModel& machine) {
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const DepGraph g(fn, block, machine, live, loop_preheaders(fn, cfg)[block]);
  apply_schedule(fn, block, list_schedule(g, fn, block, machine));
}

void schedule_function(Function& fn, const MachineModel& machine) {
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const std::vector<BlockId> pre = loop_preheaders(fn, cfg);
  for (const Block& b : fn.blocks()) {
    if (b.insts.size() < 2) continue;
    const DepGraph g(fn, b.id, machine, live, pre[b.id]);
    apply_schedule(fn, b.id, list_schedule(g, fn, b.id, machine));
  }
}

}  // namespace ilp
