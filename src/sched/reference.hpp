// Reference (textbook) implementations of dependence-graph construction and
// list scheduling, retained verbatim from the original code as the oracle for
// differential testing of the optimized hot path:
//
//   * RefDepGraph builds edges with the all-pairs memory-dependence scan, a
//     linear duplicate-edge scan, and the all-instructions-per-branch
//     control pass — O(n^2) but trivially auditable against the paper.
//   * reference_list_schedule selects from a flat ready vector by linear
//     scan-and-erase.
//
// The optimized DepGraph / list_schedule (analysis/depgraph.cpp,
// sched/scheduler.cpp) must produce byte-identical schedules — the same
// issue_time, order and makespan — for every block of every workload;
// tests/sched/scheduler_diff_test.cpp enforces this across the full study
// grid.  Do not "optimize" this file: its value is being the slow, obviously
// correct version.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/liveness.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "sched/scheduler.hpp"

namespace ilp {

class RefDepGraph {
 public:
  RefDepGraph(const Function& fn, BlockId block, const MachineModel& machine,
              const Liveness& liveness, BlockId preheader = kNoBlock);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::uint32_t>& preds(std::size_t i) const {
    return preds_[i];
  }
  [[nodiscard]] const DepEdge& edge(std::size_t idx) const { return edges_[idx]; }
  [[nodiscard]] const std::vector<std::uint32_t>& out_edges(std::size_t i) const {
    return out_edges_[i];
  }
  [[nodiscard]] const std::vector<int>& height() const { return height_; }

 private:
  void add_edge(std::uint32_t from, std::uint32_t to, int latency, DepKind kind);

  std::size_t n_ = 0;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<std::vector<std::uint32_t>> succs_;
  std::vector<std::vector<std::uint32_t>> in_edges_;
  std::vector<std::vector<std::uint32_t>> out_edges_;
  std::vector<int> height_;
};

// The original scan-and-erase critical-path list scheduler.
BlockSchedule reference_list_schedule(const RefDepGraph& g, const Function& fn,
                                      BlockId block, const MachineModel& machine);

// Schedules every block in place through the reference pipeline (reference
// dep graphs + reference scheduler), mirroring schedule_function.
void reference_schedule_function(Function& fn, const MachineModel& machine);

}  // namespace ilp
