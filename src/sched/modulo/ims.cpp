#include "sched/modulo/ims.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {
namespace {

// Height priority at a given II: longest slack-weighted path out of each
// node, H(u) = max(0, max over u->v of H(v) + latency - II*distance).
// Cyclic graph, so iterate to fixpoint; feasible_ii(II) guarantees no
// positive cycle and therefore convergence.
std::vector<int> heights_at(const ModuloDepGraph& g, int ii) {
  const std::size_t n = g.num_nodes();
  std::vector<int> h(n, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = n; u-- > 0;) {
      int best = 0;
      for (std::uint32_t ei : g.out_edges(static_cast<std::uint32_t>(u))) {
        const ModuloDepEdge& e = g.edges()[ei];
        best = std::max(best, h[e.to] + e.latency - ii * e.distance);
      }
      if (best > h[u]) {
        h[u] = best;
        changed = true;
      }
    }
  }
  return h;
}

struct ImsState {
  int ii = 0;
  int capacity = 0;              // issue slots per MRT row
  std::vector<int> time;         // -1 = unscheduled
  std::vector<int> prev_time;    // last slot this op occupied (forcing floor)
  std::vector<int> row_count;    // modulo reservation table occupancy
  int backtracks = 0;

  [[nodiscard]] int row(int t) const { return ((t % ii) + ii) % ii; }
};

std::optional<ModuloSchedule> try_ii(const ModuloDepGraph& g, int ii, int capacity,
                                     const ModuloOptions& options, int& backtracks_out) {
  if (!g.feasible_ii(ii)) return std::nullopt;
  const std::size_t n = g.num_nodes();
  const std::vector<int> height = heights_at(g, ii);

  ImsState st;
  st.ii = ii;
  st.capacity = std::max(1, capacity);
  st.time.assign(n, -1);
  st.prev_time.assign(n, -1);
  st.row_count.assign(ii, 0);

  long budget = static_cast<long>(options.budget_ratio) * static_cast<long>(n) + 8;
  std::size_t scheduled = 0;
  while (scheduled < n) {
    if (budget-- <= 0) {
      backtracks_out += st.backtracks;
      return std::nullopt;
    }
    // Highest unscheduled op by height, program order breaking ties (keeps
    // the search deterministic).
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (st.time[i] >= 0) continue;
      if (u == n || height[i] > height[u]) u = i;
    }
    ILP_ASSERT(u < n, "unscheduled op must exist");

    // Earliest start honoring already-scheduled predecessors.
    int estart = 0;
    for (std::uint32_t ei : g.in_edges(static_cast<std::uint32_t>(u))) {
      const ModuloDepEdge& e = g.edges()[ei];
      if (st.time[e.from] < 0) continue;
      estart = std::max(estart, st.time[e.from] + e.latency - ii * e.distance);
    }

    // Scan one full II worth of slots for a resource-free one.
    int t = -1;
    for (int cand = estart; cand < estart + ii; ++cand) {
      if (st.row_count[st.row(cand)] < st.capacity) {
        t = cand;
        break;
      }
    }
    const bool forced = t < 0;
    if (forced) t = std::max(estart, st.prev_time[u] + 1);

    // Evict whatever the placement invalidates: successors now violated,
    // predecessors violated by a forced early slot, and (when forced into a
    // full row) the lowest-priority occupant of that row.
    auto evict = [&](std::size_t v) {
      ILP_ASSERT(st.time[v] >= 0, "evicting unscheduled op");
      --st.row_count[st.row(st.time[v])];
      st.time[v] = -1;
      --scheduled;
      ++st.backtracks;
    };
    for (std::uint32_t ei : g.out_edges(static_cast<std::uint32_t>(u))) {
      const ModuloDepEdge& e = g.edges()[ei];
      if (e.to == u || st.time[e.to] < 0) continue;
      if (st.time[e.to] < t + e.latency - ii * e.distance) evict(e.to);
    }
    for (std::uint32_t ei : g.in_edges(static_cast<std::uint32_t>(u))) {
      const ModuloDepEdge& e = g.edges()[ei];
      if (e.from == u || st.time[e.from] < 0) continue;
      if (st.time[e.from] + e.latency - ii * e.distance > t) evict(e.from);
    }
    while (st.row_count[st.row(t)] >= st.capacity) {
      std::size_t victim = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == u || st.time[v] < 0 || st.row(st.time[v]) != st.row(t)) continue;
        if (victim == n || height[v] < height[victim]) victim = v;
      }
      ILP_ASSERT(victim < n, "full row must have an occupant");
      evict(victim);
    }

    st.time[u] = t;
    st.prev_time[u] = t;
    ++st.row_count[st.row(t)];
    ++scheduled;
  }

  ModuloSchedule sched;
  sched.ii = ii;
  sched.backtracks = st.backtracks;
  const int tmin = *std::min_element(st.time.begin(), st.time.end());
  sched.time.resize(n);
  sched.stage.resize(n);
  int max_stage = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sched.time[i] = st.time[i] - tmin;
    sched.stage[i] = sched.time[i] / ii;
    max_stage = std::max(max_stage, sched.stage[i]);
  }
  sched.num_stages = max_stage + 1;
  if (sched.num_stages > options.max_stages) {
    backtracks_out += st.backtracks;
    return std::nullopt;
  }
  return sched;
}

}  // namespace

std::optional<ModuloSchedule> ims_schedule(const ModuloDepGraph& g,
                                           const MachineModel& machine,
                                           const ModuloOptions& options, int min_ii,
                                           int max_ii) {
  if (g.num_nodes() == 0) return std::nullopt;
  // Failed IIs still did work; their eviction counts carry into the returned
  // schedule so sched.modulo.backtracks reflects total search effort.
  int wasted_backtracks = 0;
  for (int ii = std::max(1, min_ii); ii <= max_ii; ++ii) {
    auto s = try_ii(g, ii, machine.issue_width, options, wasted_backtracks);
    if (s) {
      s->backtracks += wasted_backtracks;
      return s;
    }
  }
  return std::nullopt;
}

}  // namespace ilp
