#include "sched/modulo/mdg.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "support/assert.hpp"

namespace ilp {

void ModuloDepGraph::add_edge(std::uint32_t from, std::uint32_t to, int latency,
                              int distance) {
  if (from == to && distance == 0) return;  // self-dependence within an iteration
  // Keep duplicates collapsed per (from, to, distance), max latency wins.
  for (std::uint32_t ei : out_[from]) {
    ModuloDepEdge& e = edges_[ei];
    if (e.to == to && e.distance == distance) {
      e.latency = std::max(e.latency, latency);
      return;
    }
  }
  const auto ei = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(ModuloDepEdge{from, to, latency, distance});
  out_[from].push_back(ei);
  in_[to].push_back(ei);
}

namespace {

// Per-memory-op address info for exact-distance disambiguation: the base
// register, the cumulative constant added to it by body updates *before*
// this op (so addresses are normalized to the block entry value of the
// base), and the immediate offset.
struct MemRef {
  std::uint32_t node = 0;
  Reg base = kNoReg;
  std::int64_t eff = 0;  // cumulative base updates before op + ival
  bool is_store = false;
  std::int32_t array_id = kMayAliasAll;
  int store_latency = 0;
};

}  // namespace

ModuloDepGraph::ModuloDepGraph(const Function& fn, const SimpleLoop& loop,
                               const MachineModel& machine) {
  const Block& body = fn.block(loop.body);
  ILP_ASSERT(!body.insts.empty() && body.insts.back().is_branch(),
             "simple loop body must end in its back branch");
  n_ = body.insts.size() - 1;  // exclude the back branch
  n_to_i_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) n_to_i_[i] = i;
  out_.assign(n_, {});
  in_.assign(n_, {});

  // ---- Register dependences.  For each register key track the defs and
  // uses in body order; intra-iteration edges connect adjacent def/use
  // events, loop-carried (distance 1) edges wrap the last event of one
  // iteration to the first of the next.
  struct RegEvents {
    std::vector<std::uint32_t> defs;  // node indices in body order
    std::vector<std::uint32_t> uses;
  };
  std::unordered_map<std::size_t, RegEvents> events;
  events.reserve(n_ * 2);
  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = body.insts[i];
    for (const Reg& r : in.uses()) events[RegKey::key(r)].uses.push_back(i);
    if (in.has_dest()) events[RegKey::key(in.dst)].defs.push_back(i);
  }
  // The back branch's operands must survive to the end of the iteration,
  // which the kernel's own countdown regenerates; its only in-body inputs
  // are the induction-variable chain, whose carried anti/output edges below
  // already pin those defs to one per II.  No extra nodes needed.

  for (auto& [key, ev] : events) {
    (void)key;
    // Intra-iteration: for each def, flow edges to the uses that follow it
    // before the next def, anti edges from uses to the def that follows
    // them, output edges between successive defs.
    std::size_t ui = 0;
    for (std::size_t di = 0; di < ev.defs.size(); ++di) {
      const std::uint32_t d = ev.defs[di];
      const Instruction& din = body.insts[d];
      const int lat = machine.latency(din.op);
      // Anti: uses strictly before this def (and after the previous def)
      // must read before the def overwrites.
      while (ui < ev.uses.size() && ev.uses[ui] <= d) {
        if (ev.uses[ui] < d) add_edge(ev.uses[ui], d, 0, 0);
        // A use at the same index as the def (e.g. r = r + 1) is ordered by
        // the flow edge from the previous def; nothing to add.
        ++ui;
      }
      // Flow: uses up to and *including* the next def's instruction read this
      // def (an op like "r = r + 1" reads r before rewriting it).
      const std::uint32_t next_def = di + 1 < ev.defs.size()
                                         ? ev.defs[di + 1]
                                         : static_cast<std::uint32_t>(n_);
      for (std::size_t uj = ui; uj < ev.uses.size() && ev.uses[uj] <= next_def; ++uj) {
        add_edge(d, ev.uses[uj], lat, 0);
      }
      if (di + 1 < ev.defs.size()) add_edge(d, ev.defs[di + 1], 0, 0);
    }
    if (ev.defs.empty()) continue;  // pure live-in, no carried constraint
    const std::uint32_t first_def = ev.defs.front();
    const std::uint32_t last_def = ev.defs.back();
    const Instruction& ldin = body.insts[last_def];
    const int llat = machine.latency(ldin.op);
    // Carried flow: last def reaches next iteration's uses before its first
    // (re)definition.
    for (std::uint32_t u : ev.uses) {
      if (u <= first_def) add_edge(last_def, u, llat, 1);
      else break;  // uses are in order; later uses read this iteration's def
    }
    // Carried anti: a use strictly after the last def reads this iteration's
    // value and must precede next iteration's first def clobbering it.  (A
    // use at or before last_def is already ordered via the intra anti edge
    // to its following def plus the carried output edge.)  With the stage-
    // decomposed code generation (no register renaming) this is what keeps
    // overlapped iterations from trampling live values — see pipeline.cpp.
    for (auto it = ev.uses.rbegin(); it != ev.uses.rend(); ++it) {
      if (*it <= last_def) break;
      add_edge(*it, first_def, 0, 1);
    }
    // Carried output: one def per name per II.
    if (last_def != first_def) add_edge(last_def, first_def, 0, 1);
  }

  // ---- Memory dependences with exact distances where the address math
  // permits.  Collect per-op effective offsets normalized to block entry:
  // walk the body accumulating constant updates ("b = b +/- C") per base
  // register; a base with any other kind of in-body def is "unknown".
  std::vector<MemRef> refs;
  std::map<std::size_t, std::int64_t> cum;       // base key -> sum of updates so far
  std::map<std::size_t, std::int64_t> net_step;  // base key -> per-iteration net
  std::map<std::size_t, bool> base_ok;           // false => non-affine def seen
  auto classify_def = [&](const Instruction& in) {
    if (!in.has_dest() || !in.dst.is_int()) return;
    const std::size_t k = RegKey::key(in.dst);
    std::int64_t delta = 0;
    bool affine = false;
    if (in.src2_is_imm && in.src1 == in.dst) {
      if (in.op == Opcode::IADD) {
        delta = in.ival;
        affine = true;
      } else if (in.op == Opcode::ISUB) {
        delta = -in.ival;
        affine = true;
      }
    }
    if (affine) {
      cum[k] += delta;
      net_step[k] += delta;
    } else {
      base_ok[k] = false;
    }
  };
  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = body.insts[i];
    if (in.is_load() || in.is_store()) {
      MemRef r;
      r.node = i;
      r.base = in.src1;
      const auto it = cum.find(RegKey::key(in.src1));
      r.eff = (it != cum.end() ? it->second : 0) + in.ival;
      r.is_store = in.is_store();
      r.array_id = in.array_id;
      r.store_latency = machine.latency(in.op);
      refs.push_back(r);
    }
    classify_def(in);
  }

  auto arrays_compatible = [](std::int32_t a, std::int32_t b) {
    return a == kMayAliasAll || b == kMayAliasAll || a == b;
  };

  for (std::size_t a = 0; a < refs.size(); ++a) {
    for (std::size_t b = 0; b < refs.size(); ++b) {
      const MemRef& ra = refs[a];
      const MemRef& rb = refs[b];
      if (!ra.is_store && !rb.is_store) continue;
      if (!arrays_compatible(ra.array_id, rb.array_id)) continue;
      const int lat = ra.is_store && !rb.is_store ? ra.store_latency : 0;
      const bool same_base = ra.base == rb.base && ra.base.valid();
      const std::size_t bk = RegKey::key(ra.base);
      const bool analyzable = same_base && base_ok.find(bk) == base_ok.end();
      if (analyzable) {
        // Iteration i's ra address: entry_base + i*step + ra.eff.  It equals
        // iteration (i+d)'s rb address iff ra.eff = d*step + rb.eff.
        const std::int64_t step = net_step.count(bk) ? net_step.at(bk) : 0;
        const std::int64_t diff = ra.eff - rb.eff;
        if (step == 0) {
          if (diff != 0) continue;  // provably disjoint, all iterations
          if (ra.node < rb.node) add_edge(ra.node, rb.node, lat, 0);
          if (a != b) add_edge(ra.node, rb.node, lat, 1);
          continue;
        }
        if (diff == 0) {
          if (ra.node < rb.node) add_edge(ra.node, rb.node, lat, 0);
          continue;
        }
        if (diff % step != 0) continue;  // addresses never coincide
        const std::int64_t d = diff / step;
        if (d >= 1) add_edge(ra.node, rb.node, lat, static_cast<int>(std::min<std::int64_t>(d, 64)));
        continue;
      }
      // Conservative: order every conflicting pair both within an iteration
      // and across adjacent iterations.
      if (a == b) continue;
      if (ra.node < rb.node) add_edge(ra.node, rb.node, lat, 0);
      add_edge(ra.node, rb.node, lat, 1);
    }
  }
}

int ModuloDepGraph::res_mii(const MachineModel& machine) const {
  // The kernel issues the n body ops plus its countdown ISUB and back branch
  // every II cycles; the in-order front end caps issue at issue_width per
  // cycle, and a taken branch ends its issue cycle, so the branch's slot
  // always costs at least one op of bandwidth.
  const int w = std::max(1, machine.issue_width);
  const auto ops = static_cast<int>(n_) + 2;
  return std::max(1, (ops + w - 1) / w);
}

bool ModuloDepGraph::feasible_ii(int ii) const {
  // Bellman-Ford longest-path relaxation over weights (latency - II*dist);
  // a relaxation still possible after n rounds proves a positive cycle.
  if (n_ == 0) return true;
  std::vector<std::int64_t> t(n_, 0);
  for (std::size_t round = 0; round <= n_; ++round) {
    bool changed = false;
    for (const ModuloDepEdge& e : edges_) {
      const std::int64_t cand =
          t[e.from] + e.latency - static_cast<std::int64_t>(ii) * e.distance;
      if (cand > t[e.to]) {
        t[e.to] = cand;
        changed = true;
        if (round == n_) return false;
      }
    }
    if (!changed) return true;
  }
  return true;
}

int ModuloDepGraph::rec_mii() const {
  int lo = 1, hi = 1;
  for (const ModuloDepEdge& e : edges_) hi += std::max(0, e.latency);
  // feasible_ii is monotone in II: raising II only lowers edge weights.
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (feasible_ii(mid)) hi = mid;
    else lo = mid + 1;
  }
  return lo;
}

int ModuloDepGraph::min_ii(const MachineModel& machine) const {
  return std::max(res_mii(machine), rec_mii());
}

}  // namespace ilp
