// Iterative modulo scheduling (Rau, MICRO-27): height-priority operation
// selection, a modulo reservation table tracking issue-slot pressure per
// `time mod II` row, and eviction-based backtracking when no conflict-free
// slot exists.  The II search walks upward from MinII until a schedule fits
// within the placement budget.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "machine/machine.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"

namespace ilp {

struct ModuloSchedule {
  int ii = 0;
  std::vector<int> time;   // per MDG node; normalized so min(time) == 0
  std::vector<int> stage;  // time / ii
  int num_stages = 0;      // max(stage) + 1
  int backtracks = 0;      // evictions performed while converging
};

// Schedules `g` at the smallest II in [min_ii, max_ii] the iterative scheme
// converges for, subject to `options.max_stages` (schedules needing deeper
// overlap are rejected so the codegen's prologue/epilogue stay bounded).
// nullopt when no II in range works.
std::optional<ModuloSchedule> ims_schedule(const ModuloDepGraph& g,
                                           const MachineModel& machine,
                                           const ModuloOptions& options, int min_ii,
                                           int max_ii);

}  // namespace ilp
