// Eligibility analysis, profitability policy, and stage-decomposition code
// generation for the modulo scheduling backend.
//
// Code generation does NOT rename registers.  The pipelined stream —
// prologue rounds, kernel rounds, epilogue rounds — is a *permutation* of
// the original per-iteration instruction stream: round R executes the
// stage-s copy of source iteration R - s, so each iteration's instructions
// appear exactly once, and the IMS constraint t(v) >= t(u) + lat - II*d
// guarantees every dependence (u, iter i) -> (v, iter i+d) lands in a
// not-later round (rounds are i + stage; lat >= 0 gives stage(v) + d >=
// stage(u)), with ties broken correctly by emitting stages in descending
// order within a round and keeping program order within a stage.  Because
// the MDG includes distance-1 register anti/output edges, "no renaming" is
// itself a scheduling constraint — it shows up as RecMII, and the paper's
// Lev2/Lev4 renaming + unrolling is exactly what relaxes it (the classic
// modulo-variable-expansion role).  See DESIGN.md "Modulo scheduling".
#include <algorithm>
#include <optional>
#include <unordered_set>

#include "analysis/cfg.hpp"
#include "analysis/depgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "analysis/tripcount.hpp"
#include "sched/modulo/ims.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"
#include "sched/scheduler.hpp"
#include "support/assert.hpp"

namespace ilp {

const char* scheduler_kind_name(SchedulerKind k) {
  return k == SchedulerKind::Modulo ? "modulo" : "list";
}

std::optional<SchedulerKind> parse_scheduler_kind(const std::string& s) {
  if (s == "list") return SchedulerKind::List;
  if (s == "modulo") return SchedulerKind::Modulo;
  return std::nullopt;
}

namespace {

// Everything known about one candidate loop before deciding to rewrite it.
struct LoopPlan {
  bool eligible = false;
  std::string reject_reason;
  std::optional<CountedLoopInfo> counted;
  std::optional<ModuloDepGraph> graph;
  int res_mii = 0;
  int rec_mii = 0;
  int min_ii = 0;
  int list_makespan = 0;
  std::optional<ModuloSchedule> sched;
};

LoopPlan plan_loop(const Function& fn, const SimpleLoop& loop,
                   const MachineModel& machine, const ModuloOptions& opts) {
  LoopPlan plan;
  if (loop.has_side_exits()) {
    plan.reject_reason = "side exits";
    return plan;
  }
  const Block& body = fn.block(loop.body);
  if (body.insts.size() < 3) {
    plan.reject_reason = "body too small";
    return plan;
  }
  if (body.insts.size() > opts.max_body_insts) {
    plan.reject_reason = "body too large";
    return plan;
  }
  plan.counted = match_counted_loop(fn, loop);
  if (!plan.counted) {
    plan.reject_reason = "not a counted loop";
    return plan;
  }
  if (fn.layout_next(loop.body) == kNoBlock) {
    plan.reject_reason = "no layout exit";
    return plan;
  }
  plan.eligible = true;

  // Steady-state iteration latency under the list backend: the body block's
  // list-scheduled makespan.  This is the bar pipelining must beat.
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const DepGraph g(fn, loop.body, machine, live, loop.preheader);
  plan.list_makespan = list_schedule(g, fn, loop.body, machine).makespan;

  plan.graph.emplace(fn, loop, machine);
  plan.res_mii = plan.graph->res_mii(machine);
  plan.rec_mii = plan.graph->rec_mii();
  plan.min_ii = std::max(plan.res_mii, plan.rec_mii);
  plan.sched = ims_schedule(*plan.graph, machine, opts, plan.min_ii,
                            plan.min_ii + opts.max_ii_over_min);
  return plan;
}

// Profitable = real overlap that beats the list-scheduled body.  (II <
// makespan also discharges the acceptance bound "achieved II <= list
// steady-state latency" by construction; S >= 2 rejects degenerate
// single-stage "pipelines" that merely reorder the body.)
bool profitable(const LoopPlan& plan) {
  return plan.sched && plan.sched->num_stages >= 2 &&
         plan.sched->ii < plan.list_makespan;
}

// Rewrites `loop` into guard + prologue + kernel + epilogue.  Returns the
// kernel block id.  Mirrors trans/swp.cpp's block surgery so the fallback
// discipline (original body intact behind a trip-count guard) is identical.
BlockId emit_pipeline(Function& fn, const SimpleLoop& loop,
                      const CountedLoopInfo& counted, const ModuloSchedule& sched) {
  const Block& body0 = fn.block(loop.body);
  const int stages = sched.num_stages;
  const BlockId exit_id = fn.layout_next(loop.body);
  ILP_ASSERT(exit_id != kNoBlock, "eligibility checked layout exit");

  // Stage-s instruction copies in original program order (MDG node index ==
  // body position; the back branch is excluded and replaced by the kernel's
  // own countdown).
  std::vector<std::vector<Instruction>> stage_insts(static_cast<std::size_t>(stages));
  {
    std::size_t node = 0;
    for (std::size_t i = 0; i < body0.insts.size(); ++i) {
      if (i == loop.back_branch) continue;
      stage_insts[static_cast<std::size_t>(sched.stage[node])].push_back(body0.insts[i]);
      ++node;
    }
    ILP_ASSERT(node == sched.stage.size(), "schedule covers the body");
  }

  // ---- Trip count, kernel countdown (T - (S-1) rounds), and the T < S
  // guard jumping to the preserved original body. ----
  const Reg t = emit_trip_count(fn, loop.preheader, counted);
  const Reg kc = fn.new_int_reg();
  {
    Block& pre = fn.block(loop.preheader);
    const std::size_t pos =
        pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
    std::vector<Instruction> code;
    code.push_back(make_binary_imm(Opcode::ISUB, kc, t, stages - 1));
    code.push_back(make_branch_imm(Opcode::BLT, t, stages, loop.body));
    pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), code.begin(),
                     code.end());
  }

  const std::string base = fn.block(loop.body).name;
  const BlockId pro = fn.insert_block_after(loop.preheader, base + ".pro");
  const BlockId kernel = fn.insert_block_after(pro, base + ".mod");
  const BlockId epi = fn.insert_block_after(kernel, base + ".epi");

  {
    Block& pre = fn.block(loop.preheader);
    if (!pre.insts.empty() && pre.insts.back().op == Opcode::JUMP &&
        pre.insts.back().target == loop.body)
      pre.insts.back().target = pro;
  }

  // Prologue round tau (1..S-1) runs stage s of iteration tau - s, i.e.
  // stages tau-1 down to 0; descending order keeps same-round dependences
  // (stage(v) = stage(u) - d ties) correct.
  {
    Block& p = fn.block(pro);
    for (int tau = 1; tau <= stages - 1; ++tau) {
      for (int s = tau - 1; s >= 0; --s) {
        p.insts.insert(p.insts.end(), stage_insts[static_cast<std::size_t>(s)].begin(),
                       stage_insts[static_cast<std::size_t>(s)].end());
      }
    }
  }

  // Kernel round: stages S-1 down to 0, then the countdown.
  {
    Block& k = fn.block(kernel);
    for (int s = stages - 1; s >= 0; --s) {
      k.insts.insert(k.insts.end(), stage_insts[static_cast<std::size_t>(s)].begin(),
                     stage_insts[static_cast<std::size_t>(s)].end());
    }
    k.insts.push_back(make_binary_imm(Opcode::ISUB, kc, kc, 1));
    k.insts.push_back(make_branch_imm(Opcode::BGT, kc, 0, kernel));
  }

  // Epilogue round u (1..S-1) drains stages S-1 down to u.
  {
    Block& e = fn.block(epi);
    for (int u = 1; u <= stages - 1; ++u) {
      for (int s = stages - 1; s >= u; --s) {
        e.insts.insert(e.insts.end(), stage_insts[static_cast<std::size_t>(s)].begin(),
                       stage_insts[static_cast<std::size_t>(s)].end());
      }
    }
    e.insts.push_back(make_jump(exit_id));
  }
  fn.renumber();
  return kernel;
}

}  // namespace

ModuloStats modulo_pipeline_function(Function& fn, const MachineModel& machine,
                                     const ModuloOptions& options) {
  ModuloStats stats;
  // Visited bodies: pipelined loops' fallback copies, rejected loops, and
  // freshly emitted kernels (which are themselves simple counted loops and
  // must never be re-pipelined).
  std::unordered_set<BlockId> done;
  bool progress = true;
  while (progress) {
    progress = false;
    const Cfg cfg(fn);
    const Dominators dom(cfg);
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
      if (done.count(loop.body)) continue;
      ++stats.loops_seen;
      const LoopPlan plan = plan_loop(fn, loop, machine, options);
      if (plan.sched) stats.backtracks += plan.sched->backtracks;
      if (!plan.eligible) {
        done.insert(loop.body);
        continue;
      }
      if (!profitable(plan)) {
        done.insert(loop.body);
        ++stats.loops_fallback;
        continue;
      }
      const BlockId kernel = emit_pipeline(fn, loop, *plan.counted, *plan.sched);
      done.insert(loop.body);
      done.insert(kernel);
      ++stats.loops_pipelined;
      stats.min_ii_sum += plan.min_ii;
      stats.achieved_ii_sum += plan.sched->ii;
      stats.max_stages = std::max(stats.max_stages, plan.sched->num_stages);
      progress = true;
      break;  // blocks changed; re-derive the loop list
    }
  }
  return stats;
}

std::vector<ModuloLoopReport> analyze_modulo_loops(const Function& fn,
                                                   const MachineModel& machine,
                                                   const ModuloOptions& options) {
  std::vector<ModuloLoopReport> reports;
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
    const LoopPlan plan = plan_loop(fn, loop, machine, options);
    ModuloLoopReport r;
    r.body = loop.body;
    r.eligible = plan.eligible;
    r.reject_reason = plan.reject_reason;
    if (plan.graph) r.body_insts = static_cast<int>(plan.graph->num_nodes());
    r.res_mii = plan.res_mii;
    r.rec_mii = plan.rec_mii;
    r.min_ii = plan.min_ii;
    r.achieved_ii = plan.sched ? plan.sched->ii : 0;
    r.stages = plan.sched ? plan.sched->num_stages : 0;
    r.backtracks = plan.sched ? plan.sched->backtracks : 0;
    r.list_makespan = plan.list_makespan;
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace ilp
