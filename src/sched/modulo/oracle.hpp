// Exact optimal-II oracle for small loops (the differential-oracle
// discipline of PR 2 applied to modulo scheduling; motivated by the SMT
// exact software pipelining line of work in PAPERS.md).
//
// For each candidate II the oracle decides *exactly* whether a modulo
// schedule exists, by branch-and-bound over operation issue times within the
// window [0, II * max_stages): all-pairs slack-weighted longest paths
// (max-plus Floyd-Warshall) give transitive earliest/latest bounds for every
// unassigned op, and modulo-reservation-table occupancy prunes resource-dead
// branches.  The optimal II is therefore the smallest II in the searched
// range admitting a schedule with at most max_stages stages — the same
// schedule universe ims_schedule() draws from, which is what makes
// "achieved == optimal" a meaningful assertion.
#pragma once

#include "machine/machine.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"

namespace ilp {

// Loops above this many MDG nodes are declared intractable without searching.
inline constexpr std::size_t kOracleMaxNodes = 12;

struct OracleResult {
  bool tractable = false;
  int optimal_ii = 0;        // 0 = no schedule exists in [min_ii, max_ii]
  long nodes_explored = 0;   // branch-and-bound nodes across all candidate IIs
};

// Searches candidate IIs upward from min_ii through max_ii.  `tractable` is
// false when the loop is too large or the node budget was exhausted before
// the search completed (in which case optimal_ii is a lower-bound claim
// only and tests must not assert against it).
OracleResult oracle_optimal_ii(const ModuloDepGraph& g, const MachineModel& machine,
                               const ModuloOptions& options, int min_ii, int max_ii);

}  // namespace ilp
