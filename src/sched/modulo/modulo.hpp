// Modulo scheduling backend: software pipelining with exact MinII analysis.
//
// This is the second, selectable scheduling backend (SchedulerKind::Modulo).
// It rewrites eligible innermost counted loops into prologue / kernel /
// epilogue form at the initiation interval found by iterative modulo
// scheduling (sched/modulo/ims.hpp), then hands the whole function to the
// ordinary list scheduler, which packs each straight-line block — including
// the new kernel — for the in-order machine.  Loops that are ineligible or
// where pipelining would not beat the list-scheduled body fall back cleanly:
// the original body is kept intact behind a trip-count guard (or untouched
// entirely), so SchedulerKind::Modulo is always observably equivalent to
// SchedulerKind::List (tests/sched/modulo_diff_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/machine.hpp"

namespace ilp {

// Which scheduling backend compile_with_transforms uses.  Threaded through
// CompileOptions, the study harness, ilpd's protocol ("scheduler" field) and
// every content-addressed cache key.
enum class SchedulerKind : std::uint8_t { List = 0, Modulo = 1 };

// Bump whenever the modulo scheduler's output can change for the same input;
// cache keys mix this in so warm caches never serve stale pipelined code.
inline constexpr int kModuloSchedulerVersion = 1;

[[nodiscard]] const char* scheduler_kind_name(SchedulerKind k);
// Accepts "list" / "modulo"; nullopt otherwise.
[[nodiscard]] std::optional<SchedulerKind> parse_scheduler_kind(const std::string& s);

struct ModuloOptions {
  std::size_t max_body_insts = 128;  // MDG + IMS are O(n^2)-ish; cap the body
  int max_stages = 8;                // deepest overlap the codegen will emit
  int max_ii_over_min = 16;          // II search range above MinII before giving up
  int budget_ratio = 6;              // IMS placement budget = ratio * num ops
};

// Aggregated per-function results, surfaced as sched.modulo.* counters and
// in ilpd compile responses.
struct ModuloStats {
  int loops_seen = 0;        // simple loops examined
  int loops_pipelined = 0;   // rewritten into pro/kernel/epi form
  int loops_fallback = 0;    // eligible but not profitable / IMS failed
  int backtracks = 0;        // IMS evictions across all loops
  int min_ii_sum = 0;        // sum of MinII over pipelined loops
  int achieved_ii_sum = 0;   // sum of achieved II over pipelined loops
  int max_stages = 0;        // deepest kernel emitted
};

// Pipelines every eligible innermost loop of `fn` in place.  Safe on any
// verified function; non-loop code and ineligible loops are untouched.
ModuloStats modulo_pipeline_function(Function& fn, const MachineModel& machine,
                                     const ModuloOptions& options = {});

// Per-loop analysis record for benches, tests and EXPERIMENTS.md: runs MDG
// construction and IMS on each simple loop of `fn` *without* rewriting it.
struct ModuloLoopReport {
  BlockId body = kNoBlock;
  bool eligible = false;
  std::string reject_reason;  // set when !eligible
  int body_insts = 0;         // MDG nodes (back branch excluded)
  int res_mii = 0;
  int rec_mii = 0;
  int min_ii = 0;
  int achieved_ii = 0;  // 0 when IMS failed within the II search range
  int stages = 0;
  int backtracks = 0;
  int list_makespan = 0;  // list-scheduled steady-state iteration latency
};

std::vector<ModuloLoopReport> analyze_modulo_loops(const Function& fn,
                                                   const MachineModel& machine,
                                                   const ModuloOptions& options = {});

}  // namespace ilp
