// Loop-carried dependence graph for modulo scheduling (Rau's iterative
// modulo scheduling; ROADMAP open item 1, paper Section 4 "future work").
//
// The intra-block DepGraph (analysis/depgraph.hpp) models one iteration of a
// loop body as a DAG.  Modulo scheduling needs the cyclic view: every edge
// carries an iteration *distance* d, and a schedule assigning time t(u) to
// each operation of the kernel is legal at initiation interval II iff
//
//     t(v) >= t(u) + latency(e) - II * d(e)        for every edge e: u -> v
//
// Nodes are the loop body's instructions minus the back-edge branch (the
// pipelined kernel gets its own countdown branch).  Edges:
//
//   * register flow/anti/output at distance 0 (program order within the
//     body) and distance 1 (the wrap-around def->use, use->next-def and
//     def->next-def pairs).  There is no rotating register file and no
//     modulo variable expansion, so the d=1 anti edge use->def is a *real*
//     constraint: a value may not be overwritten before last iteration's
//     reader consumed it.  Register renaming / unrolling (Lev2/Lev4) is what
//     relaxes it, exactly as in the paper.
//   * memory dependences with exact distances where both references use the
//     same base register whose only in-body updates are "base += C": the
//     conflict distance solves  eff(u) = eff(v) + d * step  for the
//     position-normalized offsets.  Unknown bases fall back to conservative
//     distance-1 edges in both directions (correct, RecMII-pessimistic).
//
// MinII = max(ResMII, RecMII).  ResMII is the issue-bandwidth bound
// ceil(n / issue_width) (plus the branch-slot bound: the kernel retains one
// branch, so II >= 1 is always enough there).  RecMII is exact: the smallest
// II for which no dependence cycle has positive total slack
// (sum(latency) - II * sum(distance) > 0), found by binary search with a
// Bellman-Ford positive-cycle check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/loops.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"

namespace ilp {

struct ModuloDepEdge {
  std::uint32_t from = 0;  // node indices (body position, back branch excluded)
  std::uint32_t to = 0;
  int latency = 0;
  int distance = 0;  // iteration distance; 0 = same iteration
};

class ModuloDepGraph {
 public:
  // Builds the graph for `loop.body` in `fn`.  The loop must be a simple
  // loop whose back branch is its last instruction (find_simple_loops
  // guarantees both); side exits are the caller's eligibility problem.
  ModuloDepGraph(const Function& fn, const SimpleLoop& loop, const MachineModel& machine);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] const std::vector<ModuloDepEdge>& edges() const { return edges_; }
  // Edge indices into edges() leaving / entering a node.
  [[nodiscard]] const std::vector<std::uint32_t>& out_edges(std::uint32_t u) const {
    return out_[u];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& in_edges(std::uint32_t u) const {
    return in_[u];
  }
  // Node index -> instruction index within the body block (the back branch
  // never appears).
  [[nodiscard]] std::size_t inst_index(std::uint32_t node) const { return n_to_i_[node]; }

  // Resource-minimum II: issue bandwidth for the kernel's n ops plus its two
  // countdown-control ops (ISUB + branch), which occupy real issue slots.
  [[nodiscard]] int res_mii(const MachineModel& machine) const;
  // Recurrence-minimum II (exact over this graph's edges).
  [[nodiscard]] int rec_mii() const;
  [[nodiscard]] int min_ii(const MachineModel& machine) const;

  // True when a time assignment satisfying every edge exists at `ii`
  // ignoring resources — i.e. no dependence cycle with positive slack.
  [[nodiscard]] bool feasible_ii(int ii) const;

 private:
  void add_edge(std::uint32_t from, std::uint32_t to, int latency, int distance);

  std::size_t n_ = 0;
  std::vector<std::size_t> n_to_i_;
  std::vector<ModuloDepEdge> edges_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
};

}  // namespace ilp
