#include "sched/modulo/oracle.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <vector>

namespace ilp {
namespace {

constexpr long kNodeBudget = 500'000;
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// All-pairs longest path under weights (latency - II*distance).  Returns
// false when some dist[u][u] > 0, i.e. a positive-slack cycle makes this II
// infeasible regardless of resources.
bool slack_closure(const ModuloDepGraph& g, int ii, std::vector<int>& dist) {
  const std::size_t n = g.num_nodes();
  dist.assign(n * n, kNegInf);
  for (std::size_t u = 0; u < n; ++u) dist[u * n + u] = 0;
  for (const ModuloDepEdge& e : g.edges()) {
    const int w = e.latency - ii * e.distance;
    int& slot = dist[e.from * n + e.to];
    slot = std::max(slot, w);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t u = 0; u < n; ++u) {
      const int duk = dist[u * n + k];
      if (duk == kNegInf) continue;
      for (std::size_t v = 0; v < n; ++v) {
        const int dkv = dist[k * n + v];
        if (dkv == kNegInf) continue;
        int& slot = dist[u * n + v];
        slot = std::max(slot, duk + dkv);
      }
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (dist[u * n + u] > 0) return false;
  }
  return true;
}

struct Search {
  const ModuloDepGraph* g = nullptr;
  std::size_t n = 0;
  int ii = 0;
  int window = 0;
  int capacity = 0;
  const std::vector<int>* dist = nullptr;
  std::vector<std::size_t> order;  // most-constrained-first assignment order
  std::vector<int> time;           // -1 = unassigned
  std::vector<int> row_count;
  long* explored = nullptr;
  bool budget_hit = false;

  [[nodiscard]] int d(std::size_t u, std::size_t v) const { return (*dist)[u * n + v]; }

  bool dfs(std::size_t depth) {
    if (depth == n) return true;
    if (++*explored > kNodeBudget) {
      budget_hit = true;
      return false;
    }
    const std::size_t u = order[depth];
    int est = 0;
    int lst = window - 1;
    for (std::size_t j = 0; j < depth; ++j) {
      const std::size_t v = order[j];
      if (d(v, u) != kNegInf) est = std::max(est, time[v] + d(v, u));
      if (d(u, v) != kNegInf) lst = std::min(lst, time[v] - d(u, v));
    }
    if (est > lst) return false;
    for (int t = est; t <= lst; ++t) {
      if (row_count[t % ii] >= capacity) continue;
      time[u] = t;
      ++row_count[t % ii];
      if (dfs(depth + 1)) return true;
      --row_count[t % ii];
      time[u] = -1;
      if (budget_hit) return false;
    }
    return false;
  }
};

}  // namespace

OracleResult oracle_optimal_ii(const ModuloDepGraph& g, const MachineModel& machine,
                               const ModuloOptions& options, int min_ii, int max_ii) {
  OracleResult result;
  const std::size_t n = g.num_nodes();
  if (n == 0 || n > kOracleMaxNodes) return result;  // intractable by size

  std::vector<int> dist;
  for (int ii = std::max(1, min_ii); ii <= max_ii; ++ii) {
    if (!slack_closure(g, ii, dist)) continue;

    Search s;
    s.g = &g;
    s.n = n;
    s.ii = ii;
    s.window = ii * options.max_stages;
    s.capacity = std::max(1, machine.issue_width);
    s.dist = &dist;
    s.order.resize(n);
    std::iota(s.order.begin(), s.order.end(), std::size_t{0});
    // Assign the most-constrained ops first: descending criticality measured
    // as the longest slack path through the op.
    std::vector<long> crit(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (u != v && dist[u * n + v] != kNegInf) crit[u] += dist[u * n + v];
      }
    }
    std::sort(s.order.begin(), s.order.end(), [&](std::size_t a, std::size_t b) {
      if (crit[a] != crit[b]) return crit[a] > crit[b];
      return a < b;
    });
    s.time.assign(n, -1);
    s.row_count.assign(ii, 0);
    s.explored = &result.nodes_explored;

    const bool found = s.dfs(0);
    if (s.budget_hit) return result;  // tractable stays false
    if (found) {
      result.tractable = true;
      result.optimal_ii = ii;
      return result;
    }
  }
  result.tractable = true;  // exhaustively proved nothing fits in range
  return result;
}

}  // namespace ilp
