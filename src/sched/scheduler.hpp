// Superblock list scheduling (paper Section 3.1: "superblock scheduling and
// graph-coloring-based register allocation").
//
// Each extended basic block is scheduled independently against the machine's
// issue width and branch-slot limit using critical-path list scheduling over
// the DepGraph.  The block's instructions are then re-emitted in selection
// order ("sorting by issue time yields the scheduled code" — paper Fig. 1);
// because selection respects every dependence edge, the emitted order is a
// topological order of the DAG and executes correctly on the in-order
// machine.
//
// Cross-iteration overlap is not modeled here (no software pipelining, as in
// the paper); the execution-driven simulator accounts for loop-carried
// interlocks at run time.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/depgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "support/arena.hpp"

namespace ilp {

struct BlockSchedule {
  std::vector<std::uint32_t> order;  // emission order (original indices)
  std::vector<int> issue_time;      // modeled issue cycle per original index
  int makespan = 0;                 // last issue cycle + 1
};

// The per-function analyses scheduling depends on (CFG, liveness for branch
// targets, loop preheaders for loop-relative memory disambiguation), built
// once and shared across every block of the function instead of being
// recomputed per schedule_block call.  Must not outlive `fn`; reordering
// instructions *within* blocks (which is all scheduling does) keeps it valid.
struct ScheduleAnalyses {
  explicit ScheduleAnalyses(const Function& fn, CompileContext* ctx = nullptr);

  Cfg cfg;
  Liveness live;
  std::vector<BlockId> preheaders;  // per block; kNoBlock when not a loop body
  Arena* scratch = nullptr;         // ctx arena for per-block scheduler scratch
};

// Computes a schedule for one block without mutating the function.  When
// `scratch` is given, per-block working arrays come from it (rewound on
// return); otherwise they are heap-allocated.
BlockSchedule list_schedule(const DepGraph& g, const Function& fn, BlockId block,
                            const MachineModel& machine, Arena* scratch = nullptr);

// Schedules `block` in place (reorders its instructions).  The 3-argument
// form builds the analyses itself; callers scheduling several blocks of one
// function should construct ScheduleAnalyses once and use the 4-argument
// form.
void schedule_block(Function& fn, BlockId block, const MachineModel& machine);
void schedule_block(Function& fn, BlockId block, const MachineModel& machine,
                    const ScheduleAnalyses& analyses);

// Schedules every block of the function in place (one shared analysis pass).
void schedule_function(Function& fn, const MachineModel& machine,
                       CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
void schedule_function(Function& fn, const MachineModel& machine);

}  // namespace ilp
