#include "sched/reference.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/addresses.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "support/assert.hpp"

// This file intentionally preserves the original quadratic implementations;
// see reference.hpp.  Keep it in lockstep with the *semantics* (not the
// data structures) of analysis/depgraph.cpp and sched/scheduler.cpp.

namespace ilp {

void RefDepGraph::add_edge(std::uint32_t from, std::uint32_t to, int latency,
                           DepKind kind) {
  ILP_ASSERT(from < to, "dependence edges must follow program order");
  // Collapse duplicates, keeping the max latency.
  for (std::uint32_t ei : out_edges_[from]) {
    if (edges_[ei].to == to) {
      edges_[ei].latency = std::max(edges_[ei].latency, latency);
      return;
    }
  }
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DepEdge{from, to, latency, kind});
  succs_[from].push_back(to);
  preds_[to].push_back(from);
  out_edges_[from].push_back(idx);
  in_edges_[to].push_back(idx);
}

RefDepGraph::RefDepGraph(const Function& fn, BlockId block, const MachineModel& machine,
                         const Liveness& liveness, BlockId preheader) {
  const Block& blk = fn.block(block);
  n_ = blk.insts.size();
  preds_.resize(n_);
  succs_.resize(n_);
  in_edges_.resize(n_);
  out_edges_.resize(n_);

  // ---- Register dependences: last def and uses-since-last-def per register.
  std::unordered_map<Reg, std::uint32_t, RegHash> last_def;
  std::unordered_map<Reg, std::vector<std::uint32_t>, RegHash> uses_since_def;

  for (std::uint32_t i = 0; i < n_; ++i) {
    const Instruction& in = blk.insts[i];
    for (const Reg& u : in.uses()) {
      const auto d = last_def.find(u);
      if (d != last_def.end())
        add_edge(d->second, i, machine.latency(blk.insts[d->second].op), DepKind::Flow);
      uses_since_def[u].push_back(i);
    }
    if (in.has_dest()) {
      const auto d = last_def.find(in.dst);
      if (d != last_def.end()) add_edge(d->second, i, 0, DepKind::Output);
      for (std::uint32_t u : uses_since_def[in.dst])
        if (u != i) add_edge(u, i, 0, DepKind::Anti);
      last_def[in.dst] = i;
      uses_since_def[in.dst].clear();
    }
  }

  // ---- Memory dependences: the all-pairs scan over memory operations.
  const BlockAddresses addrs(fn, block, preheader);
  std::vector<std::uint32_t> mem_ops;
  for (std::uint32_t i = 0; i < n_; ++i)
    if (blk.insts[i].is_memory()) mem_ops.push_back(i);
  for (std::size_t a = 0; a < mem_ops.size(); ++a) {
    for (std::size_t b = a + 1; b < mem_ops.size(); ++b) {
      const std::uint32_t i = mem_ops[a];
      const std::uint32_t j = mem_ops[b];
      const Instruction& x = blk.insts[i];
      const Instruction& y = blk.insts[j];
      if (x.is_load() && y.is_load()) continue;
      if (!may_alias(x, y, addrs.relation(i, j))) continue;
      if (x.is_store() && y.is_load())
        add_edge(i, j, machine.latency(x.op), DepKind::MemFlow);
      else if (x.is_load() && y.is_store())
        add_edge(i, j, 0, DepKind::MemAnti);
      else
        add_edge(i, j, 0, DepKind::MemOut);
    }
  }

  // ---- Control (superblock-discipline) edges: full scan per branch.
  std::vector<std::uint32_t> branches;
  for (std::uint32_t i = 0; i < n_; ++i)
    if (blk.insts[i].is_control()) branches.push_back(i);

  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    const std::uint32_t br = branches[bi];
    if (bi + 1 < branches.size()) add_edge(br, branches[bi + 1], 0, DepKind::Control);

    const Instruction& brin = blk.insts[br];
    const bool is_terminator = (br + 1 == n_) || brin.op == Opcode::JUMP ||
                               brin.op == Opcode::RET;
    BitVector target_live;
    if (brin.is_branch() || brin.op == Opcode::JUMP)
      target_live = liveness.live_in(brin.target);

    for (std::uint32_t i = 0; i < n_; ++i) {
      if (i == br || blk.insts[i].is_control()) continue;
      const Instruction& in = blk.insts[i];
      const bool writes_live_at_target =
          in.has_dest() && target_live.size() > 0 && target_live.test(RegKey::key(in.dst));
      if (i < br) {
        if (in.is_store() || writes_live_at_target) add_edge(i, br, 0, DepKind::Control);
        if (is_terminator) add_edge(i, br, 0, DepKind::Control);
      } else {
        if (in.is_store() || writes_live_at_target) add_edge(br, i, 0, DepKind::Control);
      }
    }
  }

  // ---- Critical-path heights (longest latency path to any sink).
  height_.assign(n_, 0);
  for (std::size_t i = n_; i-- > 0;) {
    int h = 0;
    for (std::uint32_t ei : out_edges_[i])
      h = std::max(h, edges_[ei].latency + height_[edges_[ei].to]);
    height_[i] = h;
  }
}

BlockSchedule reference_list_schedule(const RefDepGraph& g, const Function& fn,
                                      BlockId block, const MachineModel& machine) {
  const Block& blk = fn.block(block);
  const std::size_t n = g.num_nodes();
  BlockSchedule sched;
  sched.issue_time.assign(n, 0);
  sched.order.reserve(n);

  std::vector<int> unscheduled_preds(n, 0);
  std::vector<int> earliest(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    unscheduled_preds[i] = static_cast<int>(g.preds(i).size());

  std::vector<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i)
    if (unscheduled_preds[i] == 0) ready.push_back(i);

  std::size_t remaining = n;
  int cycle = 0;
  while (remaining > 0) {
    int slots = machine.issue_width;
    int branch_slots = machine.branch_slots;
    bool placed_any = true;
    while (placed_any && slots > 0) {
      placed_any = false;
      // Greatest height first; tie-break on original position.
      std::int64_t best = -1;
      for (std::size_t k = 0; k < ready.size(); ++k) {
        const std::uint32_t cand = ready[k];
        if (earliest[cand] > cycle) continue;
        if (blk.insts[cand].is_control() && branch_slots == 0) continue;
        if (best < 0 || g.height()[cand] > g.height()[ready[static_cast<std::size_t>(best)]] ||
            (g.height()[cand] == g.height()[ready[static_cast<std::size_t>(best)]] &&
             cand < ready[static_cast<std::size_t>(best)]))
          best = static_cast<std::int64_t>(k);
      }
      if (best < 0) break;
      const std::uint32_t node = ready[static_cast<std::size_t>(best)];
      ready.erase(ready.begin() + best);

      sched.issue_time[node] = cycle;
      sched.order.push_back(node);
      --slots;
      if (blk.insts[node].is_control()) --branch_slots;
      --remaining;
      placed_any = true;

      for (std::uint32_t ei : g.out_edges(node)) {
        const DepEdge& e = g.edge(ei);
        earliest[e.to] = std::max(earliest[e.to], cycle + e.latency);
        if (--unscheduled_preds[e.to] == 0) ready.push_back(e.to);
      }
    }
    ++cycle;
  }
  sched.makespan = n == 0 ? 0 : sched.issue_time[sched.order.back()] + 1;
  return sched;
}

void reference_schedule_function(Function& fn, const MachineModel& machine) {
  const Cfg cfg(fn);
  const Liveness live(cfg);
  std::vector<BlockId> pre(fn.num_blocks(), kNoBlock);
  const Dominators dom(cfg);
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) pre[loop.body] = loop.preheader;
  for (const Block& b : fn.blocks()) {
    if (b.insts.size() < 2) continue;
    const RefDepGraph g(fn, b.id, machine, live, pre[b.id]);
    BlockSchedule sched = reference_list_schedule(g, fn, b.id, machine);
    Block& blk = fn.block(b.id);
    std::vector<Instruction> out;
    out.reserve(blk.insts.size());
    for (std::uint32_t idx : sched.order) out.push_back(blk.insts[idx]);
    blk.insts = std::move(out);
  }
}

}  // namespace ilp
