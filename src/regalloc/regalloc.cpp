#include "regalloc/regalloc.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"

namespace ilp {

void InterferenceGraph::add_edge(std::size_t a, std::size_t b) {
  if (a == b) return;
  const auto au = static_cast<std::uint32_t>(a);
  const auto bu = static_cast<std::uint32_t>(b);
  if (std::find(adj_[a].begin(), adj_[a].end(), bu) == adj_[a].end()) {
    adj_[a].push_back(bu);
    adj_[b].push_back(au);
  }
}

InterferenceGraph::InterferenceGraph(const Function& fn, CompileContext* ctx) {
  const Cfg cfg(fn, ctx);
  const Liveness live(cfg, ctx);
  adj_.resize(live.universe_size());
  present_.assign(live.universe_size(), false);

  auto mark = [&](const Reg& r) { present_[RegKey::key(r)] = true; };
  for (const Block& b : fn.blocks())
    for (const Instruction& in : b.insts) {
      if (in.has_dest()) mark(in.dst);
      if (in.src1.valid()) mark(in.src1);
      if (in.src2.valid() && !in.src2_is_imm) mark(in.src2);
    }

  // A definition interferes with everything live after the instruction
  // (same class only; int and fp files are separate).
  std::vector<BitVector> after;
  for (const Block& b : fn.blocks()) {
    live.live_after_all_into(b.id, after);
    for (std::size_t i = 0; i < b.insts.size(); ++i) {
      const Instruction& in = b.insts[i];
      if (!in.has_dest()) continue;
      const std::size_t dkey = RegKey::key(in.dst);
      after[i].for_each_set([&](std::size_t key) {
        // Same class: keys share parity (RegKey interleaves classes).
        if ((key & 1) == (dkey & 1)) add_edge(dkey, key);
      });
    }
  }
  // Registers live into the entry block are function inputs; they coexist.
  const BitVector& entry_in = live.live_in(cfg.entry());
  std::vector<std::size_t> ins;
  entry_in.for_each_set([&](std::size_t k) { ins.push_back(k); });
  for (std::size_t i = 0; i < ins.size(); ++i)
    for (std::size_t j = i + 1; j < ins.size(); ++j)
      if ((ins[i] & 1) == (ins[j] & 1)) add_edge(ins[i], ins[j]);
}

bool InterferenceGraph::interferes(const Reg& a, const Reg& b) const {
  const std::size_t ka = RegKey::key(a);
  const auto kb = static_cast<std::uint32_t>(RegKey::key(b));
  if (ka >= adj_.size()) return false;
  return std::find(adj_[ka].begin(), adj_[ka].end(), kb) != adj_[ka].end();
}

int InterferenceGraph::color_count(RegClass cls) const {
  const std::size_t parity = cls == RegClass::Fp ? 1 : 0;
  std::vector<std::size_t> nodes;
  for (std::size_t k = parity; k < adj_.size(); k += 2)
    if (present_[k]) nodes.push_back(k);

  // Largest-degree-first greedy coloring.
  std::sort(nodes.begin(), nodes.end(), [&](std::size_t a, std::size_t b) {
    if (adj_[a].size() != adj_[b].size()) return adj_[a].size() > adj_[b].size();
    return a < b;
  });
  std::vector<int> color(adj_.size(), -1);
  int max_color = -1;
  std::vector<bool> used;
  for (std::size_t node : nodes) {
    used.assign(static_cast<std::size_t>(max_color) + 2, false);
    for (std::uint32_t nb : adj_[node])
      if (color[nb] >= 0) used[static_cast<std::size_t>(color[nb])] = true;
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[node] = c;
    max_color = std::max(max_color, c);
  }
  return static_cast<int>(nodes.empty() ? 0 : max_color + 1);
}

RegUsage measure_register_usage(const Function& fn, CompileContext& ctx) {
  const InterferenceGraph g(fn, &ctx);
  RegUsage u;
  u.int_regs = g.color_count(RegClass::Int);
  u.fp_regs = g.color_count(RegClass::Fp);
  return u;
}

RegUsage measure_register_usage(const Function& fn) {
  return measure_register_usage(fn, CompileContext::local());
}

}  // namespace ilp
