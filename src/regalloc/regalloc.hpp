// Graph-coloring register usage measurement.
//
// The modeled processor has an unlimited register supply, but (paper Section
// 3.1) "the register allocator attempts to utilize the least number of
// registers required for a given loop... registers are reused as soon as
// they become available".  We build the interference graph from
// per-instruction liveness and color it greedily (largest-degree-first
// simplification order); the number of colors per class approximates the
// minimum register need, and the reported usage is the sum over both classes
// — exactly what Figures 11/13/15 plot.
#pragma once

#include <vector>

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

struct RegUsage {
  int int_regs = 0;
  int fp_regs = 0;
  [[nodiscard]] int total() const { return int_regs + fp_regs; }
};

// Colors the interference graph of `fn` and returns the per-class color
// counts.  Read-only; virtual registers are not rewritten (nothing downstream
// needs physical numbers).
RegUsage measure_register_usage(const Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
RegUsage measure_register_usage(const Function& fn);

// The interference graph itself, exposed for tests and for the allocation
// ablation bench.
class InterferenceGraph {
 public:
  explicit InterferenceGraph(const Function& fn, CompileContext* ctx = nullptr);

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] bool interferes(const Reg& a, const Reg& b) const;
  // Greedy coloring of one class; returns the color count.
  [[nodiscard]] int color_count(RegClass cls) const;

 private:
  void add_edge(std::size_t a, std::size_t b);

  std::vector<std::vector<std::uint32_t>> adj_;  // indexed by RegKey
  std::vector<bool> present_;                    // register actually occurs
};

}  // namespace ilp
