#include "regalloc/assign.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "ir/reg.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

struct Node {
  Reg reg;
  std::vector<std::uint32_t> adj;  // RegKey keys
  double spill_cost = 0.0;
  bool no_spill = false;  // spill temporaries must not respill
  int color = -1;
};

class Allocator {
 public:
  Allocator(Function& fn, const AssignOptions& opts) : fn_(fn), opts_(opts) {}

  AssignResult run() {
    AssignResult res;
    // Register the spill area once so spill memory ops carry an alias id
    // distinct from every program array.
    spill_array_ = fn_.find_array("__spill");
    if (spill_array_ < 0)
      spill_array_ = fn_.add_array(ArrayInfo{"__spill", opts_.spill_base, 8, 0, false});

    for (int round = 0; round < 16; ++round) {
      ++res.rounds;
      std::vector<Reg> to_spill;
      const bool colored = try_color(to_spill);
      if (colored) {
        rewrite();
        res.ok = true;
        res.spill_slots = next_slot_;
        return res;
      }
      if (to_spill.empty()) return res;  // k too small even for temporaries
      for (const Reg& v : to_spill) {
        spill(v);
        if (v.cls == RegClass::Int)
          ++res.spilled_int;
        else
          ++res.spilled_fp;
      }
    }
    return res;  // did not converge
  }

 private:
  [[nodiscard]] int k_for(RegClass c) const {
    return c == RegClass::Int ? opts_.int_regs : opts_.fp_regs;
  }

  // Builds the interference graph and attempts a Chaitin coloring of both
  // classes.  On failure, fills `to_spill` with the chosen victims.
  bool try_color(std::vector<Reg>& to_spill) {
    const Cfg cfg(fn_);
    const Liveness live(cfg);
    nodes_.clear();
    index_.assign(live.universe_size(), -1);

    auto node_of = [&](const Reg& r) -> Node& {
      const std::size_t key = RegKey::key(r);
      if (index_[key] < 0) {
        index_[key] = static_cast<int>(nodes_.size());
        Node n;
        n.reg = r;
        n.no_spill = no_spill_.count(r) > 0;
        nodes_.push_back(std::move(n));
      }
      return nodes_[static_cast<std::size_t>(index_[key])];
    };
    auto add_edge = [&](const Reg& a, std::size_t bkey) {
      Node& na = node_of(a);
      const auto bu = static_cast<std::uint32_t>(bkey);
      if (std::find(na.adj.begin(), na.adj.end(), bu) == na.adj.end()) {
        na.adj.push_back(bu);
        const Reg b{(bkey & 1) ? RegClass::Fp : RegClass::Int,
                    static_cast<std::uint32_t>(bkey >> 1)};
        node_of(b).adj.push_back(static_cast<std::uint32_t>(RegKey::key(a)));
      }
    };

    std::vector<BitVector> after;
    for (const Block& b : fn_.blocks()) {
      live.live_after_all_into(b.id, after);
      for (std::size_t i = 0; i < b.insts.size(); ++i) {
        const Instruction& in = b.insts[i];
        // Count occurrences for spill costs (all operands).
        if (in.src1.valid()) node_of(in.src1).spill_cost += 1.0;
        if (in.src2.valid() && !in.src2_is_imm) node_of(in.src2).spill_cost += 1.0;
        if (!in.has_dest()) continue;
        Node& d = node_of(in.dst);
        d.spill_cost += 1.0;
        const std::size_t dkey = RegKey::key(in.dst);
        after[i].for_each_set([&](std::size_t key) {
          if (key != dkey && (key & 1) == (dkey & 1)) add_edge(in.dst, key);
        });
      }
    }
    // Entry live-ins coexist.
    std::vector<std::size_t> ins;
    live.live_in(cfg.entry()).for_each_set([&](std::size_t k) { ins.push_back(k); });
    for (std::size_t i = 0; i < ins.size(); ++i)
      for (std::size_t j = i + 1; j < ins.size(); ++j)
        if ((ins[i] & 1) == (ins[j] & 1)) {
          const Reg a{(ins[i] & 1) ? RegClass::Fp : RegClass::Int,
                      static_cast<std::uint32_t>(ins[i] >> 1)};
          add_edge(a, ins[j]);
        }

    // ---- Chaitin simplify/select with optimistic coloring. ----
    const std::size_t n = nodes_.size();
    std::vector<int> degree(n);
    std::vector<bool> removed(n, false);
    for (std::size_t i = 0; i < n; ++i) degree[i] = static_cast<int>(nodes_[i].adj.size());

    std::vector<std::size_t> stack;
    stack.reserve(n);
    std::size_t left = n;
    while (left > 0) {
      bool simplified = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (removed[i]) continue;
        if (degree[i] < k_for(nodes_[i].reg.cls)) {
          push_node(i, stack, removed, degree);
          --left;
          simplified = true;
        }
      }
      if (simplified) continue;
      // Blocked: pick the cheapest spill candidate and push optimistically.
      // If only no-spill temporaries remain, push one of those anyway —
      // "no-spill" bars respilling, not optimistic coloring; their tiny live
      // ranges almost always color at select time.
      std::size_t best = SIZE_MAX;
      double best_ratio = 0.0;
      for (int pass = 0; pass < 2 && best == SIZE_MAX; ++pass) {
        for (std::size_t i = 0; i < n; ++i) {
          if (removed[i]) continue;
          if (pass == 0 && nodes_[i].no_spill) continue;
          const double ratio =
              nodes_[i].spill_cost / (static_cast<double>(degree[i]) + 1.0);
          if (best == SIZE_MAX || ratio < best_ratio) {
            best = i;
            best_ratio = ratio;
          }
        }
      }
      ILP_ASSERT(best != SIZE_MAX, "blocked with no removable nodes");
      push_node(best, stack, removed, degree);
      --left;
    }

    // Select in reverse order.
    bool ok = true;
    for (std::size_t s = stack.size(); s-- > 0;) {
      Node& node = nodes_[stack[s]];
      std::vector<bool> used(static_cast<std::size_t>(k_for(node.reg.cls)), false);
      for (std::uint32_t akey : node.adj) {
        const int ai = index_[akey];
        if (ai < 0) continue;
        const int c = nodes_[static_cast<std::size_t>(ai)].color;
        if (c >= 0 && c < k_for(node.reg.cls)) used[static_cast<std::size_t>(c)] = true;
      }
      int c = 0;
      while (c < k_for(node.reg.cls) && used[static_cast<std::size_t>(c)]) ++c;
      if (c == k_for(node.reg.cls)) {
        node.color = -1;
        if (!node.no_spill) to_spill.push_back(node.reg);
        ok = false;
      } else {
        node.color = c;
      }
    }
    return ok;
  }

  static void push_node(std::size_t i, std::vector<std::size_t>& stack,
                        std::vector<bool>& removed, std::vector<int>& degree) {
    removed[i] = true;
    stack.push_back(i);
    (void)degree;
  }

  // NOTE: degrees are not decremented on removal above, making simplify more
  // conservative than classic Chaitin (a node's degree counts removed
  // neighbors).  Optimistic select compensates: removed neighbors that end
  // up with different colors still leave room.  This trades a little color
  // quality for simplicity; the spill loop guarantees progress either way.

  void spill(const Reg& v) {
    const std::int64_t addr = opts_.spill_base + 8 * next_slot_++;
    const bool fp = v.cls == RegClass::Fp;
    for (Block& b : fn_.blocks()) {
      std::vector<Instruction> out;
      out.reserve(b.insts.size() + 4);
      for (const Instruction& in : b.insts) {
        Instruction cur = in;
        // Loads before uses: fresh temporary per use.
        if (cur.reads(v)) {
          const Reg base = fn_.new_int_reg();
          const Reg tmp = fn_.new_reg(v.cls);
          no_spill_.insert(base);
          no_spill_.insert(tmp);
          out.push_back(make_ldi(base, 0));
          out.push_back(make_load(fp ? Opcode::FLD : Opcode::LD, tmp, base, addr,
                                  spill_array_));
          cur.replace_uses(v, tmp);
        }
        if (cur.writes(v)) {
          // Def goes to a fresh temporary, stored right after.
          const Reg tmp = fn_.new_reg(v.cls);
          const Reg base = fn_.new_int_reg();
          no_spill_.insert(tmp);
          no_spill_.insert(base);
          cur.dst = tmp;
          out.push_back(cur);
          out.push_back(make_ldi(base, 0));
          out.push_back(make_store(fp ? Opcode::FST : Opcode::ST, base, addr, tmp,
                                   spill_array_));
          continue;
        }
        out.push_back(cur);
      }
      b.insts = std::move(out);
    }
    // A spilled live-out register must still be observable: reload it into a
    // dedicated temporary right before RET.
    for (Reg& lo : live_out_mut()) {
      if (lo != v) continue;
      for (Block& b : fn_.blocks()) {
        for (std::size_t i = 0; i < b.insts.size(); ++i) {
          if (b.insts[i].op != Opcode::RET) continue;
          const Reg base = fn_.new_int_reg();
          const Reg tmp = fn_.new_reg(v.cls);
          no_spill_.insert(base);
          no_spill_.insert(tmp);
          Instruction l1 = make_ldi(base, 0);
          Instruction l2 =
              make_load(fp ? Opcode::FLD : Opcode::LD, tmp, base, addr, spill_array_);
          b.insts.insert(b.insts.begin() + static_cast<std::ptrdiff_t>(i), {l1, l2});
          i += 2;
          lo = tmp;
        }
      }
    }
    fn_.set_live_out(live_out_mut());  // keep liveness (RET uses) in sync
    fn_.renumber();
  }

  // Function::live_out is const-accessed; rebuild it through the public API.
  std::vector<Reg>& live_out_mut() {
    // Function keeps live-outs in a private vector; expose via copy-rewrite.
    if (!live_out_cache_initialized_) {
      live_out_cache_ = fn_.live_out();
      live_out_cache_initialized_ = true;
    }
    return live_out_cache_;
  }

  void rewrite() {
    auto map_reg = [&](Reg& r) {
      if (!r.valid()) return;
      const int i = index_[RegKey::key(r)];
      if (i < 0) return;  // never-touched register
      const int c = nodes_[static_cast<std::size_t>(i)].color;
      ILP_ASSERT(c >= 0, "uncolored register survived to rewrite");
      r.id = static_cast<std::uint32_t>(c);
    };
    for (Block& b : fn_.blocks())
      for (Instruction& in : b.insts) {
        if (in.has_dest()) map_reg(in.dst);
        map_reg(in.src1);
        if (!in.src2_is_imm) map_reg(in.src2);
      }
    std::vector<Reg> lo = live_out_mut();
    for (Reg& r : lo) map_reg(r);
    fn_.set_live_out(std::move(lo));
    // Shrink the register counters to the physical file size so the
    // simulator's register state is compact.
    fn_.reset_reg_counters(static_cast<std::uint32_t>(opts_.int_regs),
                           static_cast<std::uint32_t>(opts_.fp_regs));
    fn_.renumber();
  }

  Function& fn_;
  AssignOptions opts_;
  std::int32_t spill_array_ = -1;
  int next_slot_ = 0;
  std::vector<Node> nodes_;
  std::vector<int> index_;
  std::unordered_set<Reg, RegHash> no_spill_;
  std::vector<Reg> live_out_cache_;
  bool live_out_cache_initialized_ = false;
};

}  // namespace

AssignResult assign_registers(Function& fn, const AssignOptions& opts) {
  Allocator a(fn, opts);
  return a.run();
}

}  // namespace ilp
