// Physical register assignment with spilling (Chaitin-style graph coloring).
//
// The paper's processor has an unlimited register supply and its allocator
// only *minimizes* usage; this extension makes the supply finite so the cost
// of the ILP transformations' register pressure (Section 3.2, Figure 11) can
// be measured: virtual registers are colored onto k physical registers per
// class, and uncolorable ranges are spilled to a dedicated spill area with
// store-after-def / load-before-use code.
//
// Algorithm: build the interference graph from per-instruction liveness;
// simplify nodes of degree < k; when blocked, choose a spill candidate by
// lowest (dynamic-use-estimate / degree); optimistically color; actually
// spill whatever failed to color; repeat (spill temporaries have tiny live
// ranges, so this converges in a couple of rounds).
#pragma once

#include "ir/function.hpp"

namespace ilp {

struct AssignOptions {
  int int_regs = 32;
  int fp_regs = 32;
  // Base address of the compiler-managed spill area (must not collide with
  // the function's arrays).
  std::int64_t spill_base = 0x7f000000;
};

struct AssignResult {
  bool ok = false;          // false if k is too small even after spilling
  int spilled_int = 0;      // virtual registers spilled, per class
  int spilled_fp = 0;
  int spill_slots = 0;      // stack slots used
  int rounds = 0;           // coloring rounds
};

// Rewrites `fn` in place onto physical registers 0..k-1 per class, inserting
// spill code as needed.  The function's live-out list is rewritten to the
// corresponding physical registers (order preserved).
AssignResult assign_registers(Function& fn, const AssignOptions& opts = {});

}  // namespace ilp
