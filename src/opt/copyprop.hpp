// Block-local copy propagation: after `d = mov s`, uses of d read s directly
// while neither d nor s is redefined.  Conventional optimization (Conv) and
// the cleanup pass after transformations that introduce moves.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

bool copy_propagation(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool copy_propagation(Function& fn);

}  // namespace ilp
