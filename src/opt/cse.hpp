// Block-local common-subexpression elimination by value numbering, with
// redundant-load elimination and store-to-load forwarding.
//
// Memory handling: loads are value-numbered by (opcode, value number of the
// base register, offset, array).  A store forwards its value to later loads
// of the same address and invalidates loads of any may-aliasing array.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

bool common_subexpression_elimination(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool common_subexpression_elimination(Function& fn);

}  // namespace ilp
