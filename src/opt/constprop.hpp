// Constant folding, constant propagation, and algebraic simplification —
// part of the paper's "conventional scalar optimizations" (Conv level).
//
// Two scopes:
//   * function-global propagation of registers with exactly one definition
//     that is an LDI/FLDI in a block dominating the use, and
//   * block-local propagation with an environment killed at redefinitions.
//
// Fully constant pure operations fold to LDI/FLDI; partially constant ones
// move the constant into the src2 immediate slot (commuting when legal).
// Floating-point identities are applied only where bit-exact (x*1.0, x/1.0).
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Returns true if anything changed.
bool constant_propagation(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool constant_propagation(Function& fn);

}  // namespace ilp
