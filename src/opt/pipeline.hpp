// The conventional ("Conv") optimization pipeline — the paper's baseline:
// "constant propagation, copy propagation, common subexpression elimination,
// constant folding, operation folding, redundant memory access elimination,
// dead code removal, loop invariant code removal, loop induction variable
// strength reduction, and loop induction variable elimination".
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Runs the conventional pipeline to a fixpoint (bounded).  Verifies the IR
// after each pass in debug flows via the verifier.
void run_conventional_optimizations(Function& fn, CompileContext& ctx);
void run_conventional_optimizations(Function& fn);

// The post-transformation cleanup bundle (copy prop + const prop + DCE),
// used by the ILP level driver between transformations.
void run_cleanup(Function& fn, CompileContext& ctx);
void run_cleanup(Function& fn);

}  // namespace ilp
