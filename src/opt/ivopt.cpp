#include "opt/ivopt.hpp"

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/assert.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

struct IvInfo {
  std::int64_t step = 0;    // per-iteration increment of the register
  std::size_t update = 0;   // body index of the update instruction
  Reg root;                 // basic IV this one is linear in
  std::int64_t slope = 1;   // d(this)/d(root)
};

// Reusable scratch; lives in CompileContext::ivopt across compiles.
// `iv_order` lists IV registers in discovery order — the dense map is
// iteration-free, and the elimination scan walks this list (its pick is
// order-independent thanks to the unique update-index tie-break, but the
// explicit list keeps the walk deterministic by construction).
struct IvOptState {
  DenseMap<int> defs;      // RegKey -> #defs in the body
  DenseMap<IvInfo> ivs;    // RegKey -> IV description
  std::vector<Reg> iv_order;
};

class LoopIvOpt {
 public:
  LoopIvOpt(Function& fn, const SimpleLoop& loop, CompileContext& ctx, IvOptState& st)
      : fn_(fn), loop_(loop), ctx_(ctx), st_(st) {
    st_.defs.clear();
    st_.ivs.clear();
    st_.iv_order.clear();
  }

  bool run() {
    Block& body = fn_.block(loop_.body);
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      const Instruction& in = body.insts[i];
      if (in.has_dest()) ++st_.defs[RegKey::key(in.dst)];
    }
    find_basic_ivs();
    if (st_.ivs.empty()) return false;
    bool changed = false;
    // Promote derived IVs until none match (promotions enable chains).
    while (promote_one()) changed = true;
    changed |= eliminate_branch_iv();
    return changed;
  }

 private:
  void add_iv(const Reg& r, const IvInfo& iv) {
    if (!st_.ivs.contains(RegKey::key(r))) st_.iv_order.push_back(r);
    st_.ivs[RegKey::key(r)] = iv;
  }

  void find_basic_ivs() {
    Block& body = fn_.block(loop_.body);
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      const Instruction& in = body.insts[i];
      if ((in.op != Opcode::IADD && in.op != Opcode::ISUB) || !in.src2_is_imm) continue;
      if (!in.dst.is_int() || in.src1 != in.dst) continue;
      if (st_.defs.get_or(RegKey::key(in.dst), 0) != 1) continue;
      IvInfo iv;
      iv.step = in.op == Opcode::IADD ? in.ival : -in.ival;
      iv.update = i;
      iv.root = in.dst;
      iv.slope = 1;
      add_iv(in.dst, iv);
    }
  }

  [[nodiscard]] bool is_invariant(const Reg& r) const {
    return !r.valid() || st_.defs.get_or(RegKey::key(r), 0) == 0;
  }

  // Inserts `in` just before the preheader's terminator.
  void emit_preheader(Instruction in) {
    Block& pre = fn_.block(loop_.preheader);
    const std::size_t pos = pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
    pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), in);
  }

  // Attempts one derived-IV promotion; returns true if performed.
  bool promote_one() {
    Block& body = fn_.block(loop_.body);
    for (std::size_t q = 0; q < body.insts.size(); ++q) {
      const Instruction in = body.insts[q];
      if (!in.has_dest() || !in.dst.is_int()) continue;
      if (st_.defs.get_or(RegKey::key(in.dst), 0) != 1) continue;
      if (st_.ivs.contains(RegKey::key(in.dst))) continue;  // already an IV

      const IvInfo* x_ptr =
          in.src1.valid() ? st_.ivs.find(RegKey::key(in.src1)) : nullptr;
      if (x_ptr == nullptr) continue;
      const IvInfo& x = *x_ptr;
      const Reg xreg = in.src1;

      // Match a promotable form and compute the slope over x.
      std::int64_t a = 0;
      bool profitable = false;
      switch (in.op) {
        case Opcode::IMUL:
          if (!in.src2_is_imm) continue;
          a = in.ival;
          profitable = true;  // removes a multiply from the recurrence
          break;
        case Opcode::ISHL:
          if (!in.src2_is_imm || in.ival < 0 || in.ival > 32) continue;
          a = std::int64_t{1} << in.ival;
          profitable = true;
          break;
        case Opcode::IADD:
        case Opcode::ISUB:
          if (in.src2_is_imm) {
            // iv + const: only worth promoting on top of an already-promoted
            // chain (collapses address arithmetic onto one register).
            a = 1;
            profitable = x.slope != 1 || x.root != xreg;
          } else {
            if (!is_invariant(in.src2)) continue;
            a = 1;
            profitable = x.slope != 1 || x.root != xreg;
          }
          break;
        default:
          continue;
      }
      if (a == 0) continue;
      if (!profitable) continue;
      if (in.op == Opcode::ISUB && !in.src2_is_imm) {
        // t = invreg - iv has slope -1 only when src1 is the IV; src1 is the
        // IV here, so t = iv - invreg keeps slope +1.  Nothing extra to do.
      }

      const std::int64_t delta = a * x.step;
      if (delta == 0) continue;

      // Preheader init: t = f(x_entry) [- delta if the def precedes x's
      // update, since iteration 1 then sees f(x_entry) directly].
      Instruction init = in;  // same op, same operands: x holds entry value
      emit_preheader(init);
      if (q <= x.update) {
        // First-iteration value is f(x_entry); body update adds delta before
        // first use?  No: the body update *replaces* the def, so iteration 1
        // computes t = t_init + delta at q.  We therefore need
        // t_init = f(x_entry) - delta.
        emit_preheader(make_binary_imm(Opcode::ISUB, in.dst, in.dst, delta));
      } else {
        // Def after x's update: iteration 1 sees f(x_entry + x.step).
        // t_init + delta must equal f(x_entry) + a*x.step, and
        // f already evaluated at x_entry, so t_init = f(x_entry) + a*step -
        // delta = f(x_entry) (they cancel: delta == a*step).  Nothing to add.
      }

      // Replace the body def with the IV update.
      body.insts[q] = make_binary_imm(delta > 0 ? Opcode::IADD : Opcode::ISUB, in.dst,
                                      in.dst, delta > 0 ? delta : -delta);

      IvInfo t;
      t.step = delta;
      t.update = q;
      t.root = x.root;
      t.slope = a * x.slope;
      add_iv(in.dst, t);
      return true;
    }
    return false;
  }

  // Counts body uses of `r` excluding instruction `skip`.
  int body_uses(const Reg& r, std::size_t skip_a, std::size_t skip_b) const {
    const Block& body = fn_.block(loop_.body);
    int n = 0;
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      if (i == skip_a || i == skip_b) continue;
      if (body.insts[i].reads(r)) ++n;
    }
    return n;
  }

  bool eliminate_branch_iv() {
    Block& body = fn_.block(loop_.body);
    Instruction& br = body.insts[loop_.back_branch];
    if (op_is_fp_compare(br.op) || !br.src1.valid()) return false;
    const Reg iv = br.src1;
    const IvInfo* iv_info = st_.ivs.find(RegKey::key(iv));
    if (iv_info == nullptr || iv_info->root != iv) return false;  // basic only
    const IvInfo& info = *iv_info;
    if (info.update >= loop_.back_branch) return false;  // update must precede branch
    // The bound must be loop-invariant or the precomputed bound' is stale.
    if (!br.src2_is_imm && !is_invariant(br.src2)) return false;
    // Retargeting is always semantics-preserving (the IV and its update stay;
    // DCE removes them if dead), but it is only *profitable* when the branch
    // was the IV's last non-update use inside the loop.
    if (body_uses(iv, info.update, loop_.back_branch) != 0) return false;
    // Replacement: any promoted IV rooted at iv with positive slope whose
    // update precedes the branch.  Slope ties break on the earlier update
    // (update indices are unique), so the pick never depends on walk order.
    const Reg* best = nullptr;
    const IvInfo* best_info = nullptr;
    for (const Reg& reg : st_.iv_order) {
      const IvInfo& cand = *st_.ivs.find(RegKey::key(reg));
      if (reg == iv || cand.root != iv || cand.slope <= 0) continue;
      if (cand.update >= loop_.back_branch) continue;
      if (best == nullptr || cand.slope < best_info->slope ||
          (cand.slope == best_info->slope && cand.update < best_info->update)) {
        best = &reg;
        best_info = &cand;
      }
    }
    if (best == nullptr) return false;
    const Reg t = *best;
    const std::int64_t A = best_info->slope;

    // bound' = t + A * (bound - iv), evaluated on preheader entry values.
    const Reg d = fn_.new_int_reg();
    if (br.src2_is_imm) {
      emit_preheader(make_ldi(d, br.ival));
      emit_preheader(make_binary(Opcode::ISUB, d, d, iv));
    } else {
      emit_preheader(make_binary(Opcode::ISUB, d, br.src2, iv));
    }
    const Reg m = fn_.new_int_reg();
    emit_preheader(make_binary_imm(Opcode::IMUL, m, d, A));
    const Reg bound = fn_.new_int_reg();
    emit_preheader(make_binary(Opcode::IADD, bound, t, m));

    br.src1 = t;
    br.src2 = bound;
    br.src2_is_imm = false;
    br.ival = 0;

    // The old counter's update is now dead unless the counter value escapes
    // the loop (used at an exit).  Liveness-based DCE cannot remove the
    // self-sustaining "iv = iv + step", so delete it here when provably dead.
    {
      const Cfg cfg(fn_, &ctx_);
      const Liveness live(cfg, &ctx_);
      bool escapes = false;
      const BlockId fall = fn_.layout_next(loop_.body);
      if (fall != kNoBlock && live.is_live_in(fall, iv)) escapes = true;
      for (std::size_t se : loop_.side_exits) {
        const Instruction& x = body.insts[se];
        if (x.is_branch() && live.is_live_in(x.target, iv)) escapes = true;
      }
      if (!escapes)
        body.insts.erase(body.insts.begin() + static_cast<std::ptrdiff_t>(info.update));
    }
    return true;
  }

  Function& fn_;
  const SimpleLoop& loop_;
  CompileContext& ctx_;
  IvOptState& st_;
};

}  // namespace

bool induction_variable_optimization(Function& fn, CompileContext& ctx) {
  const Cfg cfg(fn, &ctx);
  const Dominators dom(cfg);
  IvOptState& st = ctx.ivopt.get<IvOptState>();
  bool changed = false;
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    changed |= LoopIvOpt(fn, loop, ctx, st).run();
  return changed;
}

bool induction_variable_optimization(Function& fn) {
  return induction_variable_optimization(fn, CompileContext::local());
}

}  // namespace ilp
