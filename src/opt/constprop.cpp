#include "opt/constprop.hpp"

#include <optional>
#include <unordered_map>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "ir/reg.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

struct ConstVal {
  bool is_fp = false;
  std::int64_t i = 0;
  double f = 0.0;
};

std::optional<std::int64_t> fold_int(Opcode op, std::int64_t a, std::int64_t b) {
  auto wrap = [](unsigned long long v) { return static_cast<std::int64_t>(v); };
  switch (op) {
    case Opcode::IADD: return wrap(static_cast<unsigned long long>(a) + static_cast<unsigned long long>(b));
    case Opcode::ISUB: return wrap(static_cast<unsigned long long>(a) - static_cast<unsigned long long>(b));
    case Opcode::IMUL: return wrap(static_cast<unsigned long long>(a) * static_cast<unsigned long long>(b));
    case Opcode::IDIV:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a / b;
    case Opcode::IREM:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a % b;
    case Opcode::ISHL: return wrap(static_cast<unsigned long long>(a) << (b & 63));
    case Opcode::ISHRL:
      return wrap(static_cast<unsigned long long>(a) >> (b & 63));
    case Opcode::ISHRA: return a >> (b & 63);
    case Opcode::IAND: return a & b;
    case Opcode::IOR: return a | b;
    case Opcode::IXOR: return a ^ b;
    case Opcode::IMAX: return a > b ? a : b;
    case Opcode::IMIN: return a < b ? a : b;
    default: return std::nullopt;
  }
}

std::optional<double> fold_fp(Opcode op, double a, double b) {
  switch (op) {
    case Opcode::FADD: return a + b;
    case Opcode::FSUB: return a - b;
    case Opcode::FMUL: return a * b;
    case Opcode::FDIV: return a / b;
    case Opcode::FMAX: return a > b ? a : b;
    case Opcode::FMIN: return a < b ? a : b;
    default: return std::nullopt;
  }
}

class ConstPropPass {
 public:
  explicit ConstPropPass(Function& fn) : fn_(fn) {}

  bool run() {
    collect_global_constants();
    bool changed = false;
    for (Block& b : fn_.blocks()) changed |= run_block(b);
    return changed;
  }

 private:
  void collect_global_constants() {
    // Count definitions per register; single LDI/FLDI defs become global
    // constants usable in every block their definition dominates.
    std::unordered_map<Reg, int, RegHash> def_count;
    std::unordered_map<Reg, std::pair<BlockId, ConstVal>, RegHash> single_const;
    for (const Block& b : fn_.blocks()) {
      for (const Instruction& in : b.insts) {
        if (!in.has_dest()) continue;
        const int n = ++def_count[in.dst];
        if (n > 1) {
          single_const.erase(in.dst);
          continue;
        }
        if (in.op == Opcode::LDI)
          single_const[in.dst] = {b.id, ConstVal{false, in.ival, 0.0}};
        else if (in.op == Opcode::FLDI)
          single_const[in.dst] = {b.id, ConstVal{true, 0, in.fval}};
      }
    }
    for (auto& [reg, entry] : single_const)
      if (def_count[reg] == 1) global_[reg] = entry;
  }

  std::optional<ConstVal> lookup(const Reg& r, BlockId block,
                                 const std::unordered_map<Reg, ConstVal, RegHash>& local) {
    const auto lit = local.find(r);
    if (lit != local.end()) return lit->second;
    const auto git = global_.find(r);
    if (git != global_.end()) {
      if (!dom_) {
        cfg_.emplace(fn_);
        dom_.emplace(*cfg_);
      }
      // Strict dominance: a def later in the same block must not propagate
      // upward; same-block forward propagation is handled by the local env.
      if (git->second.first != block && dom_->dominates(git->second.first, block))
        return git->second.second;
    }
    return std::nullopt;
  }

  bool run_block(Block& b) {
    bool changed = false;
    std::unordered_map<Reg, ConstVal, RegHash> local;

    for (Instruction& in : b.insts) {
      // --- Try to rewrite sources with constants. ---
      const bool fp_ctx = in.is_branch() ? op_is_fp_compare(in.op) : op_dest_is_fp(in.op);
      if ((op_is_binary_arith(in.op) || in.is_branch()) && !in.src2_is_imm &&
          in.src2.valid()) {
        if (const auto c = lookup(in.src2, b.id, local)) {
          in.src2 = kNoReg;
          in.src2_is_imm = true;
          if (fp_ctx)
            in.fval = c->f;
          else
            in.ival = c->i;
          changed = true;
        }
      }
      // Commute a constant out of src1 when legal.
      if ((op_is_binary_arith(in.op) && op_is_commutative(in.op)) && in.src1.valid() &&
          !in.src2_is_imm && in.src2.valid()) {
        if (lookup(in.src1, b.id, local) && !lookup(in.src2, b.id, local)) {
          std::swap(in.src1, in.src2);
          changed = true;
          if (const auto c = lookup(in.src2, b.id, local)) {
            in.src2 = kNoReg;
            in.src2_is_imm = true;
            if (fp_ctx)
              in.fval = c->f;
            else
              in.ival = c->i;
          }
        }
      }

      // --- Full folds: all operands constant. ---
      if (op_is_binary_arith(in.op) && in.src2_is_imm) {
        if (const auto a = lookup(in.src1, b.id, local)) {
          if (!fp_ctx) {
            if (const auto r = fold_int(in.op, a->i, in.ival)) {
              const Reg dst = in.dst;
              in = make_ldi(dst, *r);
              changed = true;
            }
          } else {
            if (const auto r = fold_fp(in.op, a->f, in.fval)) {
              const Reg dst = in.dst;
              in = make_fldi(dst, *r);
              changed = true;
            }
          }
        }
      }
      if ((in.op == Opcode::IMOV || in.op == Opcode::INEG) && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id, local)) {
          const Reg dst = in.dst;
          in = make_ldi(dst, in.op == Opcode::INEG
                                 ? static_cast<std::int64_t>(
                                       0ull - static_cast<unsigned long long>(a->i))
                                 : a->i);
          changed = true;
        }
      }
      if ((in.op == Opcode::FMOV || in.op == Opcode::FNEG) && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id, local)) {
          const Reg dst = in.dst;
          in = make_fldi(dst, in.op == Opcode::FNEG ? -a->f : a->f);
          changed = true;
        }
      }
      if (in.op == Opcode::ITOF && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id, local)) {
          const Reg dst = in.dst;
          in = make_fldi(dst, static_cast<double>(a->i));
          changed = true;
        }
      }

      // --- Algebraic identities (bit-exact only). ---
      changed |= simplify(in);

      // --- Update local environment. ---
      if (in.has_dest()) {
        if (in.op == Opcode::LDI)
          local[in.dst] = ConstVal{false, in.ival, 0.0};
        else if (in.op == Opcode::FLDI)
          local[in.dst] = ConstVal{true, 0, in.fval};
        else
          local.erase(in.dst);
      }
    }
    return changed;
  }

  static bool simplify(Instruction& in) {
    if (!op_is_binary_arith(in.op) || !in.src2_is_imm) return false;
    const Reg dst = in.dst;
    const Reg a = in.src1;
    switch (in.op) {
      case Opcode::IADD:
      case Opcode::ISUB:
      case Opcode::IOR:
      case Opcode::IXOR:
        if (in.ival == 0) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::ISHL:
      case Opcode::ISHRA:
      case Opcode::ISHRL:
        if (in.ival == 0) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::IMUL:
        if (in.ival == 1) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        if (in.ival == 0) {
          in = make_ldi(dst, 0);
          return true;
        }
        return false;
      case Opcode::IDIV:
        if (in.ival == 1) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::FMUL:
      case Opcode::FDIV:
        if (in.fval == 1.0) {
          in = make_unary(Opcode::FMOV, dst, a);
          return true;
        }
        return false;
      default:
        return false;
    }
  }

  Function& fn_;
  std::unordered_map<Reg, std::pair<BlockId, ConstVal>, RegHash> global_;
  std::optional<Cfg> cfg_;
  std::optional<Dominators> dom_;
};

}  // namespace

bool constant_propagation(Function& fn) { return ConstPropPass(fn).run(); }

}  // namespace ilp
