#include "opt/constprop.hpp"

#include <optional>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "ir/reg.hpp"
#include "support/assert.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

struct ConstVal {
  bool is_fp = false;
  std::int64_t i = 0;
  double f = 0.0;
};

std::optional<std::int64_t> fold_int(Opcode op, std::int64_t a, std::int64_t b) {
  auto wrap = [](unsigned long long v) { return static_cast<std::int64_t>(v); };
  switch (op) {
    case Opcode::IADD: return wrap(static_cast<unsigned long long>(a) + static_cast<unsigned long long>(b));
    case Opcode::ISUB: return wrap(static_cast<unsigned long long>(a) - static_cast<unsigned long long>(b));
    case Opcode::IMUL: return wrap(static_cast<unsigned long long>(a) * static_cast<unsigned long long>(b));
    case Opcode::IDIV:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a / b;
    case Opcode::IREM:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a % b;
    case Opcode::ISHL: return wrap(static_cast<unsigned long long>(a) << (b & 63));
    case Opcode::ISHRL:
      return wrap(static_cast<unsigned long long>(a) >> (b & 63));
    case Opcode::ISHRA: return a >> (b & 63);
    case Opcode::IAND: return a & b;
    case Opcode::IOR: return a | b;
    case Opcode::IXOR: return a ^ b;
    case Opcode::IMAX: return a > b ? a : b;
    case Opcode::IMIN: return a < b ? a : b;
    default: return std::nullopt;
  }
}

std::optional<double> fold_fp(Opcode op, double a, double b) {
  switch (op) {
    case Opcode::FADD: return a + b;
    case Opcode::FSUB: return a - b;
    case Opcode::FMUL: return a * b;
    case Opcode::FDIV: return a / b;
    case Opcode::FMAX: return a > b ? a : b;
    case Opcode::FMIN: return a < b ? a : b;
    default: return std::nullopt;
  }
}

// Reusable scratch; lives in CompileContext::constprop across compiles.
struct ConstPropState {
  struct GlobalConst {
    BlockId block = kNoBlock;
    ConstVal val;
  };
  DenseMap<int> def_count;        // RegKey -> #defs seen
  DenseMap<GlobalConst> global;   // RegKey -> single dominating constant def
  DenseMap<ConstVal> local;       // RegKey -> block-local environment
};

class ConstPropPass {
 public:
  ConstPropPass(Function& fn, CompileContext& ctx)
      : fn_(fn), ctx_(ctx), st_(ctx.constprop.get<ConstPropState>()) {}

  bool run() {
    collect_global_constants();
    bool changed = false;
    for (Block& b : fn_.blocks()) changed |= run_block(b);
    return changed;
  }

 private:
  void collect_global_constants() {
    // Registers with exactly one definition that is an LDI/FLDI become
    // global constants usable in every block their definition dominates.
    // Maintained directly in one scan: the first def installs the constant
    // (if any), any later def of the same register evicts it.
    st_.def_count.clear();
    st_.global.clear();
    for (const Block& b : fn_.blocks()) {
      for (const Instruction& in : b.insts) {
        if (!in.has_dest()) continue;
        const std::size_t k = RegKey::key(in.dst);
        const int n = ++st_.def_count[k];
        if (n > 1) {
          st_.global.erase(k);
          continue;
        }
        if (in.op == Opcode::LDI)
          st_.global[k] = {b.id, ConstVal{false, in.ival, 0.0}};
        else if (in.op == Opcode::FLDI)
          st_.global[k] = {b.id, ConstVal{true, 0, in.fval}};
      }
    }
  }

  std::optional<ConstVal> lookup(const Reg& r, BlockId block) {
    const std::size_t k = RegKey::key(r);
    if (const ConstVal* lv = st_.local.find(k)) return *lv;
    if (const ConstPropState::GlobalConst* g = st_.global.find(k)) {
      if (!dom_) {
        cfg_.emplace(fn_, &ctx_);
        dom_.emplace(*cfg_);
      }
      // Strict dominance: a def later in the same block must not propagate
      // upward; same-block forward propagation is handled by the local env.
      if (g->block != block && dom_->dominates(g->block, block)) return g->val;
    }
    return std::nullopt;
  }

  bool run_block(Block& b) {
    bool changed = false;
    st_.local.clear();

    for (Instruction& in : b.insts) {
      // --- Try to rewrite sources with constants. ---
      const bool fp_ctx = in.is_branch() ? op_is_fp_compare(in.op) : op_dest_is_fp(in.op);
      if ((op_is_binary_arith(in.op) || in.is_branch()) && !in.src2_is_imm &&
          in.src2.valid()) {
        if (const auto c = lookup(in.src2, b.id)) {
          in.src2 = kNoReg;
          in.src2_is_imm = true;
          if (fp_ctx)
            in.fval = c->f;
          else
            in.ival = c->i;
          changed = true;
        }
      }
      // Commute a constant out of src1 when legal.
      if ((op_is_binary_arith(in.op) && op_is_commutative(in.op)) && in.src1.valid() &&
          !in.src2_is_imm && in.src2.valid()) {
        if (lookup(in.src1, b.id) && !lookup(in.src2, b.id)) {
          std::swap(in.src1, in.src2);
          changed = true;
          if (const auto c = lookup(in.src2, b.id)) {
            in.src2 = kNoReg;
            in.src2_is_imm = true;
            if (fp_ctx)
              in.fval = c->f;
            else
              in.ival = c->i;
          }
        }
      }

      // --- Full folds: all operands constant. ---
      if (op_is_binary_arith(in.op) && in.src2_is_imm) {
        if (const auto a = lookup(in.src1, b.id)) {
          if (!fp_ctx) {
            if (const auto r = fold_int(in.op, a->i, in.ival)) {
              const Reg dst = in.dst;
              in = make_ldi(dst, *r);
              changed = true;
            }
          } else {
            if (const auto r = fold_fp(in.op, a->f, in.fval)) {
              const Reg dst = in.dst;
              in = make_fldi(dst, *r);
              changed = true;
            }
          }
        }
      }
      if ((in.op == Opcode::IMOV || in.op == Opcode::INEG) && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id)) {
          const Reg dst = in.dst;
          in = make_ldi(dst, in.op == Opcode::INEG
                                 ? static_cast<std::int64_t>(
                                       0ull - static_cast<unsigned long long>(a->i))
                                 : a->i);
          changed = true;
        }
      }
      if ((in.op == Opcode::FMOV || in.op == Opcode::FNEG) && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id)) {
          const Reg dst = in.dst;
          in = make_fldi(dst, in.op == Opcode::FNEG ? -a->f : a->f);
          changed = true;
        }
      }
      if (in.op == Opcode::ITOF && in.src1.valid()) {
        if (const auto a = lookup(in.src1, b.id)) {
          const Reg dst = in.dst;
          in = make_fldi(dst, static_cast<double>(a->i));
          changed = true;
        }
      }

      // --- Algebraic identities (bit-exact only). ---
      changed |= simplify(in);

      // --- Update local environment. ---
      if (in.has_dest()) {
        if (in.op == Opcode::LDI)
          st_.local[RegKey::key(in.dst)] = ConstVal{false, in.ival, 0.0};
        else if (in.op == Opcode::FLDI)
          st_.local[RegKey::key(in.dst)] = ConstVal{true, 0, in.fval};
        else
          st_.local.erase(RegKey::key(in.dst));
      }
    }
    return changed;
  }

  static bool simplify(Instruction& in) {
    if (!op_is_binary_arith(in.op) || !in.src2_is_imm) return false;
    const Reg dst = in.dst;
    const Reg a = in.src1;
    switch (in.op) {
      case Opcode::IADD:
      case Opcode::ISUB:
      case Opcode::IOR:
      case Opcode::IXOR:
        if (in.ival == 0) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::ISHL:
      case Opcode::ISHRA:
      case Opcode::ISHRL:
        if (in.ival == 0) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::IMUL:
        if (in.ival == 1) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        if (in.ival == 0) {
          in = make_ldi(dst, 0);
          return true;
        }
        return false;
      case Opcode::IDIV:
        if (in.ival == 1) {
          in = make_unary(Opcode::IMOV, dst, a);
          return true;
        }
        return false;
      case Opcode::FMUL:
      case Opcode::FDIV:
        if (in.fval == 1.0) {
          in = make_unary(Opcode::FMOV, dst, a);
          return true;
        }
        return false;
      default:
        return false;
    }
  }

  Function& fn_;
  CompileContext& ctx_;
  ConstPropState& st_;
  std::optional<Cfg> cfg_;
  std::optional<Dominators> dom_;
};

}  // namespace

bool constant_propagation(Function& fn, CompileContext& ctx) {
  return ConstPropPass(fn, ctx).run();
}

bool constant_propagation(Function& fn) {
  return constant_propagation(fn, CompileContext::local());
}

}  // namespace ilp
