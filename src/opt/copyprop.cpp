#include "opt/copyprop.hpp"

#include <vector>

#include "ir/reg.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::copyprop across compiles.
// `active` lists the dst registers with a possibly-live entry in `copy_of`
// (the dense map is iteration-free, so invalidation scans this list; block
// copy chains are short, so the linear scan is cheap).
struct CopyPropState {
  DenseMap<Reg> copy_of;  // keyed by RegKey of dst
  std::vector<Reg> active;
};

}  // namespace

bool copy_propagation(Function& fn, CompileContext& ctx) {
  CopyPropState& st = ctx.copyprop.get<CopyPropState>();
  bool changed = false;
  for (Block& b : fn.blocks()) {
    // copy_of[d] = s while valid.
    st.copy_of.clear();
    st.active.clear();
    for (Instruction& in : b.insts) {
      auto subst = [&](Reg& r) {
        if (const Reg* s = st.copy_of.find(RegKey::key(r))) {
          r = *s;
          changed = true;
        }
      };
      if (in.src1.valid()) subst(in.src1);
      if (in.src2.valid() && !in.src2_is_imm) subst(in.src2);

      if (!in.has_dest()) continue;
      // Any redefinition invalidates copies involving the dest.
      for (const Reg& d : st.active) {
        const Reg* s = st.copy_of.find(RegKey::key(d));
        if (s != nullptr && (d == in.dst || *s == in.dst))
          st.copy_of.erase(RegKey::key(d));
      }
      if ((in.op == Opcode::IMOV || in.op == Opcode::FMOV) && in.src1 != in.dst) {
        if (!st.copy_of.contains(RegKey::key(in.dst))) st.active.push_back(in.dst);
        st.copy_of[RegKey::key(in.dst)] = in.src1;
      }
    }
  }
  return changed;
}

bool copy_propagation(Function& fn) {
  return copy_propagation(fn, CompileContext::local());
}

}  // namespace ilp
