#include "opt/copyprop.hpp"

#include <unordered_map>

#include "ir/reg.hpp"

namespace ilp {

bool copy_propagation(Function& fn) {
  bool changed = false;
  for (Block& b : fn.blocks()) {
    // copy_of[d] = s while valid.
    std::unordered_map<Reg, Reg, RegHash> copy_of;
    for (Instruction& in : b.insts) {
      auto subst = [&](Reg& r) {
        const auto it = copy_of.find(r);
        if (it != copy_of.end()) {
          r = it->second;
          changed = true;
        }
      };
      if (in.src1.valid()) subst(in.src1);
      if (in.src2.valid() && !in.src2_is_imm) subst(in.src2);

      if (!in.has_dest()) continue;
      // Any redefinition invalidates copies involving the dest.
      for (auto it = copy_of.begin(); it != copy_of.end();) {
        if (it->first == in.dst || it->second == in.dst)
          it = copy_of.erase(it);
        else
          ++it;
      }
      if ((in.op == Opcode::IMOV || in.op == Opcode::FMOV) && in.src1 != in.dst)
        copy_of[in.dst] = in.src1;
    }
  }
  return changed;
}

}  // namespace ilp
