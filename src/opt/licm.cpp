#include "opt/licm.hpp"

#include <unordered_map>
#include <unordered_set>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"

namespace ilp {

namespace {

bool hoist_from_loop(Function& fn, const SimpleLoop& loop, const Liveness& live) {
  Block& body = fn.block(loop.body);
  Block& pre = fn.block(loop.preheader);

  // Definition counts inside the body.
  std::unordered_map<Reg, int, RegHash> defs;
  bool loop_has_store = false;
  std::unordered_set<std::int32_t> stored_arrays;
  bool stores_unknown = false;
  for (const Instruction& in : body.insts) {
    if (in.has_dest()) ++defs[in.dst];
    if (in.is_store()) {
      loop_has_store = true;
      if (in.array_id == kMayAliasAll)
        stores_unknown = true;
      else
        stored_arrays.insert(in.array_id);
    }
  }

  auto invariant_reg = [&](const Reg& r) { return !r.valid() || defs.count(r) == 0; };

  bool changed = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      const Instruction& in = body.insts[i];
      if (!in.has_dest() || in.is_store()) continue;
      if (defs[in.dst] != 1) continue;
      if (!invariant_reg(in.src1)) continue;
      if (in.src2.valid() && !in.src2_is_imm && !invariant_reg(in.src2)) continue;
      if (live.is_live_in(loop.body, in.dst)) continue;
      if (in.is_load()) {
        const bool clobbered = loop_has_store &&
                               (stores_unknown || in.array_id == kMayAliasAll ||
                                stored_arrays.count(in.array_id) > 0);
        if (clobbered) continue;
      }
      if ((in.op == Opcode::IDIV || in.op == Opcode::IREM) &&
          !(in.src2_is_imm && in.ival != 0))
        continue;

      // Hoist: insert before the preheader's terminator (or at its end).
      Instruction moved = in;
      defs.erase(moved.dst);
      body.insts.erase(body.insts.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t pos =
          pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
      pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), moved);
      changed = true;
      progress = true;
      break;  // indices shifted; restart the scan
    }
  }
  return changed;
}

}  // namespace

bool loop_invariant_code_motion(Function& fn) {
  bool changed = false;
  bool outer_progress = true;
  while (outer_progress) {
    outer_progress = false;
    const Cfg cfg(fn);
    const Dominators dom(cfg);
    const Liveness live(cfg);
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
      if (hoist_from_loop(fn, loop, live)) {
        changed = true;
        outer_progress = true;
        break;  // CFG-derived analyses are stale; recompute
      }
    }
  }
  return changed;
}

}  // namespace ilp
