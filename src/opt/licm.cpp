#include "opt/licm.hpp"

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::licm across compiles.
struct LicmState {
  DenseMap<int> defs;       // RegKey -> #defs inside the loop body
  DenseSet stored_arrays;   // array_id + 1 (membership only)
};

bool hoist_from_loop(Function& fn, const SimpleLoop& loop, const Liveness& live,
                     LicmState& st) {
  Block& body = fn.block(loop.body);
  Block& pre = fn.block(loop.preheader);

  // Definition counts inside the body.
  DenseMap<int>& defs = st.defs;
  defs.clear();
  st.stored_arrays.clear();
  bool loop_has_store = false;
  bool stores_unknown = false;
  for (const Instruction& in : body.insts) {
    if (in.has_dest()) ++defs[RegKey::key(in.dst)];
    if (in.is_store()) {
      loop_has_store = true;
      if (in.array_id == kMayAliasAll)
        stores_unknown = true;
      else
        st.stored_arrays.insert(static_cast<std::size_t>(in.array_id) + 1);
    }
  }

  auto invariant_reg = [&](const Reg& r) {
    return !r.valid() || defs.get_or(RegKey::key(r), 0) == 0;
  };

  bool changed = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      const Instruction& in = body.insts[i];
      if (!in.has_dest() || in.is_store()) continue;
      if (defs.get_or(RegKey::key(in.dst), 0) != 1) continue;
      if (!invariant_reg(in.src1)) continue;
      if (in.src2.valid() && !in.src2_is_imm && !invariant_reg(in.src2)) continue;
      if (live.is_live_in(loop.body, in.dst)) continue;
      if (in.is_load()) {
        const bool clobbered =
            loop_has_store &&
            (stores_unknown || in.array_id == kMayAliasAll ||
             st.stored_arrays.contains(static_cast<std::size_t>(in.array_id) + 1));
        if (clobbered) continue;
      }
      if ((in.op == Opcode::IDIV || in.op == Opcode::IREM) &&
          !(in.src2_is_imm && in.ival != 0))
        continue;

      // Hoist: insert before the preheader's terminator (or at its end).
      Instruction moved = in;
      defs.erase(RegKey::key(moved.dst));
      body.insts.erase(body.insts.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t pos =
          pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
      pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), moved);
      changed = true;
      progress = true;
      break;  // indices shifted; restart the scan
    }
  }
  return changed;
}

}  // namespace

bool loop_invariant_code_motion(Function& fn, CompileContext& ctx) {
  LicmState& st = ctx.licm.get<LicmState>();
  bool changed = false;
  bool outer_progress = true;
  while (outer_progress) {
    outer_progress = false;
    const Cfg cfg(fn, &ctx);
    const Dominators dom(cfg);
    const Liveness live(cfg, &ctx);
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
      if (hoist_from_loop(fn, loop, live, st)) {
        changed = true;
        outer_progress = true;
        break;  // CFG-derived analyses are stale; recompute
      }
    }
  }
  return changed;
}

bool loop_invariant_code_motion(Function& fn) {
  return loop_invariant_code_motion(fn, CompileContext::local());
}

}  // namespace ilp
