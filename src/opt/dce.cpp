#include "opt/dce.hpp"

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "ir/reg.hpp"
#include "support/dense.hpp"

namespace ilp {

namespace {

// Reusable scratch; lives in CompileContext::dce across compiles.
struct DceState {
  DenseSet needed;
  std::vector<BitVector> after;  // live_after_all rows, pooled across blocks
};

// Compacts a block in place, dropping instructions `dead(i, in)` says to.
// Returns true when anything was removed; never reallocates.
template <typename DeadFn>
bool compact_block(Block& b, DeadFn dead) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < b.insts.size(); ++i) {
    if (dead(i, b.insts[i])) continue;
    if (w != i) b.insts[w] = b.insts[i];
    ++w;
  }
  if (w == b.insts.size()) return false;
  b.insts.resize(w);
  return true;
}

// Faint-code elimination: removes self-sustaining dead cycles (e.g. a loop
// counter "i = i + 1" whose value feeds nothing but itself), which
// liveness-based DCE cannot see.  Flow-insensitive: a register is *needed*
// iff some store/branch/live-out uses it or some kept definition of a needed
// register reads it.
bool remove_faint_code(Function& fn, DceState& st) {
  DenseSet& needed = st.needed;
  needed.clear();
  for (const Reg& r : fn.live_out()) needed.insert(RegKey::key(r));
  for (const Block& b : fn.blocks())
    for (const Instruction& in : b.insts) {
      if (in.has_dest()) continue;  // store/branch/jump/ret roots
      if (in.src1.valid()) needed.insert(RegKey::key(in.src1));
      if (in.src2.valid() && !in.src2_is_imm) needed.insert(RegKey::key(in.src2));
    }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Block& b : fn.blocks())
      for (const Instruction& in : b.insts) {
        if (!in.has_dest() || !needed.contains(RegKey::key(in.dst))) continue;
        if (in.src1.valid() && needed.insert(RegKey::key(in.src1))) grew = true;
        if (in.src2.valid() && !in.src2_is_imm && needed.insert(RegKey::key(in.src2)))
          grew = true;
      }
  }
  bool removed = false;
  for (Block& b : fn.blocks())
    removed |= compact_block(b, [&](std::size_t, const Instruction& in) {
      return in.has_dest() && !needed.contains(RegKey::key(in.dst));
    });
  return removed;
}

}  // namespace

bool dead_code_elimination(Function& fn, CompileContext& ctx) {
  DceState& st = ctx.dce.get<DceState>();
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = remove_faint_code(fn, st);
    any |= changed;
    const Cfg cfg(fn, &ctx);
    const Liveness live(cfg, &ctx);
    for (Block& b : fn.blocks()) {
      live.live_after_all_into(b.id, st.after);
      const bool removed = compact_block(b, [&](std::size_t i, const Instruction& in) {
        return in.has_dest() && !st.after[i].test(RegKey::key(in.dst));
      });
      changed |= removed;
      any |= removed;
    }
  }
  return any;
}

bool dead_code_elimination(Function& fn) {
  return dead_code_elimination(fn, CompileContext::local());
}

}  // namespace ilp
