#include "opt/dce.hpp"

#include <unordered_set>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "ir/reg.hpp"

namespace ilp {

namespace {

// Faint-code elimination: removes self-sustaining dead cycles (e.g. a loop
// counter "i = i + 1" whose value feeds nothing but itself), which
// liveness-based DCE cannot see.  Flow-insensitive: a register is *needed*
// iff some store/branch/live-out uses it or some kept definition of a needed
// register reads it.
bool remove_faint_code(Function& fn) {
  std::unordered_set<Reg, RegHash> needed;
  for (const Reg& r : fn.live_out()) needed.insert(r);
  for (const Block& b : fn.blocks())
    for (const Instruction& in : b.insts) {
      if (in.has_dest()) continue;  // store/branch/jump/ret roots
      if (in.src1.valid()) needed.insert(in.src1);
      if (in.src2.valid() && !in.src2_is_imm) needed.insert(in.src2);
    }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Block& b : fn.blocks())
      for (const Instruction& in : b.insts) {
        if (!in.has_dest() || needed.count(in.dst) == 0) continue;
        if (in.src1.valid() && needed.insert(in.src1).second) grew = true;
        if (in.src2.valid() && !in.src2_is_imm && needed.insert(in.src2).second)
          grew = true;
      }
  }
  bool removed = false;
  for (Block& b : fn.blocks()) {
    std::vector<Instruction> kept;
    kept.reserve(b.insts.size());
    for (const Instruction& in : b.insts) {
      if (in.has_dest() && needed.count(in.dst) == 0) {
        removed = true;
        continue;
      }
      kept.push_back(in);
    }
    b.insts = std::move(kept);
  }
  return removed;
}

}  // namespace

bool dead_code_elimination(Function& fn) {
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = remove_faint_code(fn);
    any |= changed;
    const Cfg cfg(fn);
    const Liveness live(cfg);
    for (Block& b : fn.blocks()) {
      const auto after = live.live_after_all(b.id);
      std::vector<Instruction> kept;
      kept.reserve(b.insts.size());
      for (std::size_t i = 0; i < b.insts.size(); ++i) {
        const Instruction& in = b.insts[i];
        const bool removable = in.has_dest() && !after[i].test(RegKey::key(in.dst));
        if (removable) {
          changed = true;
          any = true;
          continue;
        }
        kept.push_back(in);
      }
      b.insts = std::move(kept);
    }
  }
  return any;
}

}  // namespace ilp
