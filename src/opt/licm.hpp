// Loop-invariant code motion for simple (single-extended-block) loops —
// the paper's "loop invariant code removal" conventional optimization.
//
// An instruction hoists to the preheader when:
//   * it is pure (no store, no control; loads allowed — non-excepting — but
//     only if no store in the loop may alias them and the address operand is
//     invariant),
//   * every register operand is loop-invariant (no definition in the body),
//   * it is the only definition of its destination in the body, and the
//     destination is not live into the loop header (hoisting must not
//     clobber a value the first iteration would have read),
//   * IDIV/IREM hoist only with a nonzero constant divisor (a side exit
//     could otherwise skip a trapping division that the original code never
//     executed).
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

bool loop_invariant_code_motion(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool loop_invariant_code_motion(Function& fn);

}  // namespace ilp
