// Dead code elimination using global liveness.
//
// Removes pure instructions (arithmetic, moves, constants, loads — the
// processor's loads are non-excepting) whose destination is dead at the
// definition point.  Runs to a fixpoint; the function's declared live-out
// registers are always preserved.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

bool dead_code_elimination(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool dead_code_elimination(Function& fn);

}  // namespace ilp
