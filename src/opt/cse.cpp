#include "opt/cse.hpp"

#include <cstring>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>

#include "ir/reg.hpp"

namespace ilp {

namespace {

// Value-number key for a pure computation.  Immediates are hashed by raw
// bits so -0.0 and +0.0 stay distinct (they behave differently under FDIV).
struct ExprKey {
  Opcode op;
  std::uint32_t vn1;
  std::uint32_t vn2;
  std::uint64_t imm;
  std::int32_t array;

  bool operator<(const ExprKey& o) const {
    return std::tie(op, vn1, vn2, imm, array) <
           std::tie(o.op, o.vn1, o.vn2, o.imm, o.array);
  }
};

class BlockCse {
 public:
  explicit BlockCse(Block& b) : b_(b) {}

  bool run() {
    bool changed = false;
    for (Instruction& in : b_.insts) {
      if (in.is_store()) {
        handle_store(in);
        continue;
      }
      if (!in.has_dest()) continue;

      if (const auto key = key_of(in)) {
        const auto it = table_.find(*key);
        if (it != table_.end() && holds(it->second)) {
          // Replace the computation with a move from the previous result.
          const Reg prev = it->second.reg;
          const Reg dst = in.dst;
          in = make_unary(dst.cls == RegClass::Fp ? Opcode::FMOV : Opcode::IMOV, dst, prev);
          changed = true;
          define_as(dst, vn_of(prev));
          continue;
        }
        const std::uint32_t v = fresh_vn();
        define_as(in.dst, v);
        table_[*key] = Binding{in.dst, v};
        continue;
      }
      // Unknown computation: new value.
      define_as(in.dst, fresh_vn());
    }
    return changed;
  }

 private:
  struct Binding {
    Reg reg;
    std::uint32_t vn;
  };

  std::uint32_t fresh_vn() { return next_vn_++; }

  std::uint32_t vn_of(const Reg& r) {
    const auto it = vn_.find(r);
    if (it != vn_.end()) return it->second;
    const std::uint32_t v = fresh_vn();
    vn_.emplace(r, v);
    return v;
  }

  void define_as(const Reg& r, std::uint32_t v) { vn_[r] = v; }

  bool holds(const Binding& bind) {
    const auto it = vn_.find(bind.reg);
    return it != vn_.end() && it->second == bind.vn;
  }

  std::optional<ExprKey> key_of(Instruction& in) {
    if (op_is_binary_arith(in.op)) {
      std::uint32_t v1 = vn_of(in.src1);
      std::uint32_t v2 = 0;
      std::uint64_t imm = 0;
      if (in.src2_is_imm) {
        if (op_dest_is_fp(in.op))
          std::memcpy(&imm, &in.fval, sizeof imm);
        else
          imm = static_cast<std::uint64_t>(in.ival);
      } else {
        v2 = vn_of(in.src2);
      }
      if (op_is_commutative(in.op) && !in.src2_is_imm && v2 < v1) std::swap(v1, v2);
      return ExprKey{in.op, v1, v2, imm, -1};
    }
    switch (in.op) {
      case Opcode::LDI:
        return ExprKey{in.op, 0, 0, static_cast<std::uint64_t>(in.ival), -1};
      case Opcode::FLDI: {
        std::uint64_t imm = 0;
        std::memcpy(&imm, &in.fval, sizeof imm);
        return ExprKey{in.op, 0, 0, imm, -1};
      }
      case Opcode::IMOV:
      case Opcode::FMOV:
      case Opcode::INEG:
      case Opcode::FNEG:
      case Opcode::ITOF:
      case Opcode::FTOI:
        return ExprKey{in.op, vn_of(in.src1), 0, 0, -1};
      case Opcode::LD:
      case Opcode::FLD:
        return ExprKey{in.op, vn_of(in.src1), mem_epoch_for(in.array_id),
                       static_cast<std::uint64_t>(in.ival), in.array_id};
      default:
        return std::nullopt;
    }
  }

  void handle_store(const Instruction& in) {
    // Invalidate loads that may alias, then forward this store's value to a
    // matching future load by seeding the load-expression table.
    bump_epochs(in.array_id);
    const Opcode load_op = in.op == Opcode::FST ? Opcode::FLD : Opcode::LD;
    const ExprKey key{load_op, vn_of(in.src1), mem_epoch_for(in.array_id),
                      static_cast<std::uint64_t>(in.ival), in.array_id};
    table_[key] = Binding{in.src2, vn_of(in.src2)};
  }

  // A load of a known array is invalidated by stores to that array and by
  // stores to unknown memory; an unknown load is invalidated by every store.
  std::uint32_t mem_epoch_for(std::int32_t array) {
    if (array == kMayAliasAll) return total_stores_;
    const auto it = epoch_.find(array);
    const std::uint32_t e = it == epoch_.end() ? 0 : it->second;
    return e * 0x10000u + unknown_stores_;
  }

  void bump_epochs(std::int32_t array) {
    ++total_stores_;
    if (array == kMayAliasAll)
      ++unknown_stores_;
    else
      ++epoch_[array];
  }

  Block& b_;
  std::uint32_t next_vn_ = 1;
  std::uint32_t total_stores_ = 0;
  std::uint32_t unknown_stores_ = 0;
  std::unordered_map<Reg, std::uint32_t, RegHash> vn_;
  std::unordered_map<std::int32_t, std::uint32_t> epoch_;
  std::map<ExprKey, Binding> table_;
};

}  // namespace

bool common_subexpression_elimination(Function& fn) {
  bool changed = false;
  for (Block& b : fn.blocks()) changed |= BlockCse(b).run();
  return changed;
}

}  // namespace ilp
