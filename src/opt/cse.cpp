#include "opt/cse.hpp"

#include <cstring>
#include <optional>

#include "ir/reg.hpp"
#include "support/dense.hpp"
#include "support/flat_table.hpp"

namespace ilp {

namespace {

// Value-number key for a pure computation.  Immediates are hashed by raw
// bits so -0.0 and +0.0 stay distinct (they behave differently under FDIV).
struct ExprKey {
  Opcode op = Opcode::NOP;
  std::uint32_t vn1 = 0;
  std::uint32_t vn2 = 0;
  std::uint64_t imm = 0;
  std::int32_t array = 0;

  bool operator==(const ExprKey& o) const {
    return op == o.op && vn1 == o.vn1 && vn2 == o.vn2 && imm == o.imm &&
           array == o.array;
  }
};

struct ExprKeyHash {
  std::size_t operator()(const ExprKey& k) const {
    // FNV-1a over the logical fields (not the padded struct bytes).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(k.op));
    mix(k.vn1);
    mix(k.vn2);
    mix(k.imm);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.array)));
    return static_cast<std::size_t>(h);
  }
};

struct Binding {
  Reg reg;
  std::uint32_t vn = 0;
};

// Reusable scratch; lives in CompileContext::cse across compiles.  All three
// containers clear in O(1) via epoch bumps, so per-block reset is free.
struct CseState {
  DenseMap<std::uint32_t> vn;         // RegKey -> value number
  DenseMap<std::uint32_t> mem_epoch;  // array_id + 1 -> store epoch
  FlatTable<ExprKey, Binding, ExprKeyHash> table;
};

class BlockCse {
 public:
  BlockCse(Block& b, CseState& st) : b_(b), st_(st) {
    st_.vn.clear();
    st_.mem_epoch.clear();
    st_.table.clear();
  }

  bool run() {
    bool changed = false;
    for (Instruction& in : b_.insts) {
      if (in.is_store()) {
        handle_store(in);
        continue;
      }
      if (!in.has_dest()) continue;

      if (const auto key = key_of(in)) {
        if (const Binding* bind = st_.table.find(*key); bind != nullptr && holds(*bind)) {
          // Replace the computation with a move from the previous result.
          const Reg prev = bind->reg;
          const Reg dst = in.dst;
          in = make_unary(dst.cls == RegClass::Fp ? Opcode::FMOV : Opcode::IMOV, dst, prev);
          changed = true;
          define_as(dst, vn_of(prev));
          continue;
        }
        const std::uint32_t v = fresh_vn();
        define_as(in.dst, v);
        st_.table.insert_or_assign(*key, Binding{in.dst, v});
        continue;
      }
      // Unknown computation: new value.
      define_as(in.dst, fresh_vn());
    }
    return changed;
  }

 private:
  std::uint32_t fresh_vn() { return next_vn_++; }

  std::uint32_t vn_of(const Reg& r) {
    if (const std::uint32_t* v = st_.vn.find(RegKey::key(r))) return *v;
    const std::uint32_t v = fresh_vn();
    st_.vn[RegKey::key(r)] = v;
    return v;
  }

  void define_as(const Reg& r, std::uint32_t v) { st_.vn[RegKey::key(r)] = v; }

  bool holds(const Binding& bind) {
    const std::uint32_t* v = st_.vn.find(RegKey::key(bind.reg));
    return v != nullptr && *v == bind.vn;
  }

  std::optional<ExprKey> key_of(Instruction& in) {
    if (op_is_binary_arith(in.op)) {
      std::uint32_t v1 = vn_of(in.src1);
      std::uint32_t v2 = 0;
      std::uint64_t imm = 0;
      if (in.src2_is_imm) {
        if (op_dest_is_fp(in.op))
          std::memcpy(&imm, &in.fval, sizeof imm);
        else
          imm = static_cast<std::uint64_t>(in.ival);
      } else {
        v2 = vn_of(in.src2);
      }
      if (op_is_commutative(in.op) && !in.src2_is_imm && v2 < v1) std::swap(v1, v2);
      return ExprKey{in.op, v1, v2, imm, -1};
    }
    switch (in.op) {
      case Opcode::LDI:
        return ExprKey{in.op, 0, 0, static_cast<std::uint64_t>(in.ival), -1};
      case Opcode::FLDI: {
        std::uint64_t imm = 0;
        std::memcpy(&imm, &in.fval, sizeof imm);
        return ExprKey{in.op, 0, 0, imm, -1};
      }
      case Opcode::IMOV:
      case Opcode::FMOV:
      case Opcode::INEG:
      case Opcode::FNEG:
      case Opcode::ITOF:
      case Opcode::FTOI:
        return ExprKey{in.op, vn_of(in.src1), 0, 0, -1};
      case Opcode::LD:
      case Opcode::FLD:
        return ExprKey{in.op, vn_of(in.src1), mem_epoch_for(in.array_id),
                       static_cast<std::uint64_t>(in.ival), in.array_id};
      default:
        return std::nullopt;
    }
  }

  void handle_store(const Instruction& in) {
    // Invalidate loads that may alias, then forward this store's value to a
    // matching future load by seeding the load-expression table.
    bump_epochs(in.array_id);
    const Opcode load_op = in.op == Opcode::FST ? Opcode::FLD : Opcode::LD;
    const ExprKey key{load_op, vn_of(in.src1), mem_epoch_for(in.array_id),
                      static_cast<std::uint64_t>(in.ival), in.array_id};
    st_.table.insert_or_assign(key, Binding{in.src2, vn_of(in.src2)});
  }

  // A load of a known array is invalidated by stores to that array and by
  // stores to unknown memory; an unknown load is invalidated by every store.
  std::uint32_t mem_epoch_for(std::int32_t array) {
    if (array == kMayAliasAll) return total_stores_;
    const std::uint32_t e =
        st_.mem_epoch.get_or(static_cast<std::size_t>(array) + 1, 0u);
    return e * 0x10000u + unknown_stores_;
  }

  void bump_epochs(std::int32_t array) {
    ++total_stores_;
    if (array == kMayAliasAll)
      ++unknown_stores_;
    else
      ++st_.mem_epoch[static_cast<std::size_t>(array) + 1];
  }

  Block& b_;
  CseState& st_;
  std::uint32_t next_vn_ = 1;
  std::uint32_t total_stores_ = 0;
  std::uint32_t unknown_stores_ = 0;
};

}  // namespace

bool common_subexpression_elimination(Function& fn, CompileContext& ctx) {
  CseState& st = ctx.cse.get<CseState>();
  bool changed = false;
  for (Block& b : fn.blocks()) changed |= BlockCse(b, st).run();
  return changed;
}

bool common_subexpression_elimination(Function& fn) {
  return common_subexpression_elimination(fn, CompileContext::local());
}

}  // namespace ilp
