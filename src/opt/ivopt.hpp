// Induction-variable strength reduction and elimination — the paper's
// conventional "loop induction variable strength reduction" and "loop
// induction variable elimination".
//
// Strength reduction rewrites derived linear functions of a basic induction
// variable (t = iv*c, t = iv<<k, and +/- chains on top of promoted IVs) into
// independent induction variables updated by a constant, initialized in the
// preheader.  This converts naively lowered subscript arithmetic
// (offset = i*4 each iteration) into the pointer-bumping form of the paper's
// examples (r1i = r1i + 4).
//
// Elimination then retargets the loop's back-edge comparison from a basic
// induction variable whose only remaining uses are its own update and the
// branch onto one of the promoted IVs (bound' = t + A*(bound - iv), computed
// once in the preheader), letting DCE remove the original counter.
//
// Invariant used throughout: at the end of the preheader, every IV register
// (basic or promoted) holds its iteration-entry value.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

bool induction_variable_optimization(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
bool induction_variable_optimization(Function& fn);

}  // namespace ilp
