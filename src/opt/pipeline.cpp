#include "opt/pipeline.hpp"

#include "ir/verifier.hpp"
#include "opt/constprop.hpp"
#include "opt/copyprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/ivopt.hpp"
#include "opt/licm.hpp"

namespace ilp {

void run_conventional_optimizations(Function& fn, CompileContext& ctx) {
  verify_or_die(fn, "before conventional optimizations");
  // Scalar cleanup to a bounded fixpoint.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    changed |= constant_propagation(fn, ctx);
    changed |= copy_propagation(fn, ctx);
    changed |= common_subexpression_elimination(fn, ctx);
    changed |= copy_propagation(fn, ctx);
    changed |= dead_code_elimination(fn, ctx);
    if (!changed) break;
  }
  // Loop optimizations, then re-clean.
  loop_invariant_code_motion(fn, ctx);
  induction_variable_optimization(fn, ctx);
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    changed |= constant_propagation(fn, ctx);
    changed |= copy_propagation(fn, ctx);
    changed |= common_subexpression_elimination(fn, ctx);
    changed |= copy_propagation(fn, ctx);
    changed |= dead_code_elimination(fn, ctx);
    if (!changed) break;
  }
  verify_or_die(fn, "after conventional optimizations");
}

void run_conventional_optimizations(Function& fn) {
  run_conventional_optimizations(fn, CompileContext::local());
}

void run_cleanup(Function& fn, CompileContext& ctx) {
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    changed |= copy_propagation(fn, ctx);
    changed |= constant_propagation(fn, ctx);
    changed |= dead_code_elimination(fn, ctx);
    if (!changed) break;
  }
}

void run_cleanup(Function& fn) {
  run_cleanup(fn, CompileContext::local());
}

}  // namespace ilp
