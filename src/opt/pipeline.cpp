#include "opt/pipeline.hpp"

#include "ir/verifier.hpp"
#include "opt/constprop.hpp"
#include "opt/copyprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/ivopt.hpp"
#include "opt/licm.hpp"

namespace ilp {

void run_conventional_optimizations(Function& fn) {
  verify_or_die(fn, "before conventional optimizations");
  // Scalar cleanup to a bounded fixpoint.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    changed |= constant_propagation(fn);
    changed |= copy_propagation(fn);
    changed |= common_subexpression_elimination(fn);
    changed |= copy_propagation(fn);
    changed |= dead_code_elimination(fn);
    if (!changed) break;
  }
  // Loop optimizations, then re-clean.
  loop_invariant_code_motion(fn);
  induction_variable_optimization(fn);
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    changed |= constant_propagation(fn);
    changed |= copy_propagation(fn);
    changed |= common_subexpression_elimination(fn);
    changed |= copy_propagation(fn);
    changed |= dead_code_elimination(fn);
    if (!changed) break;
  }
  verify_or_die(fn, "after conventional optimizations");
}

void run_cleanup(Function& fn) {
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    changed |= copy_propagation(fn);
    changed |= constant_propagation(fn);
    changed |= dead_code_elimination(fn);
    if (!changed) break;
  }
}

}  // namespace ilp
