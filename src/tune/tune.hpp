// Autotuner: beam search over the transformation space, cost-model pruned.
//
// The paper fixes five transformation levels; the repo exposes a much larger
// per-program space — {level, unroll factor, nest pass subset, tile size,
// scheduler backend}.  autotune() searches it with simulated cycles as the
// objective:
//
//   round 0   the five paper levels at the default knobs (always simulated —
//             the Lev4 seed makes "never worse than Lev4" hold by
//             construction, and the seeds calibrate the cost model);
//   round k   every single-knob mutation of the current beam, deduplicated
//             against everything already visited, is *analyzed* (compiled,
//             features extracted) and ranked by the cost model; only the top
//             `sim_fraction` (at least `beam_width`) is *simulated*, the
//             rest are pruned.  Survivors refresh the calibration and the
//             beam; the search stops when no round improves the best, the
//             rounds or simulation budget runs out, or `cancelled()` fires.
//
// Everything is deterministic for a fixed (source, options): candidates are
// generated in sorted order, evaluated batches are collected by submission
// index, calibration updates happen in index order, and every ranking uses
// explicit (value, config-order) keys — so a parallel evaluator returns
// byte-identical results to a serial one, and identical requests coalesce
// on content hash.  Evaluation is abstracted behind `Evaluator` so the same
// search core runs in-process (ilpc/bench: thread pool + result cache) and
// inside ilpd (shard-pinned jobs sharing the service's cell cache).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/pool.hpp"
#include "sched/modulo/modulo.hpp"
#include "trans/level.hpp"
#include "trans/nest/nest.hpp"
#include "tune/costmodel.hpp"

namespace ilp::tune {

// One point of the search space.
struct TuneConfig {
  OptLevel level = OptLevel::Lev4;
  int unroll = 8;
  NestOptions nest;
  SchedulerKind scheduler = SchedulerKind::List;

  bool operator==(const TuneConfig&) const = default;

  // Dense, total, deterministic order used for dedup and every tie-break.
  [[nodiscard]] std::uint64_t order_key() const;
  // Compact human-readable name, e.g. "Lev4/u8/list" or
  // "Lev3/u4/modulo+interchange+tile16".
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::string to_json() const;
};

// The tuner's reference point: Lev4 at the service defaults.
[[nodiscard]] TuneConfig default_config();
[[nodiscard]] CompileOptions to_compile_options(const TuneConfig& c);

struct TuneOptions {
  int issue = 8;
  int beam_width = 4;        // configs carried between rounds
  int max_rounds = 3;        // mutation rounds after the seed round
  double sim_fraction = 0.5; // share of each analyzed frontier simulated
  int max_sims = 48;         // simulation budget, seeds included
  bool use_cost_model = true;  // false: simulate every candidate (exhaustive)
  // Polled between evaluation batches; true stops the search with the best
  // found so far (`stopped_early` set).  Wire deadlines and drains here.
  std::function<bool()> cancelled;
};

// Audit record of one candidate, in deterministic evaluation order.
struct CandidateEval {
  TuneConfig config;
  int round = 0;
  bool simulated = false;   // false: pruned by the cost model (or budget)
  bool ok = true;           // compile/simulate succeeded
  std::uint64_t cycles = 0; // simulated cycles when simulated && ok
  double predicted = 0.0;   // cost-model estimate at ranking time
  bool cache_hit = false;   // measurement served from the result cache
  std::string error;
};

struct TuneResult {
  bool ok = false;
  std::string error;
  bool stopped_early = false;  // cancelled() fired mid-search

  TuneConfig best;
  std::uint64_t best_cycles = 0;
  std::uint64_t lev4_cycles = 0;  // the default_config() seed's cycles

  int rounds = 0;  // mutation rounds actually run
  std::uint64_t considered = 0;
  std::uint64_t simulated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t cache_hits = 0;
  double model_mape = 0.0;

  std::vector<CandidateEval> evals;

  [[nodiscard]] double speedup_vs_lev4() const {
    return best_cycles == 0 ? 0.0
                            : static_cast<double>(lev4_cycles) /
                                  static_cast<double>(best_cycles);
  }
  // Deterministic digest of the search (configs, flags, cycles — everything
  // except cache hits, which legitimately vary with cache warmth).  Equal
  // signatures mean "the same search happened"; the determinism tests and
  // the parallel-vs-serial oracle compare these.
  [[nodiscard]] std::string signature() const;
  // JSON object (schema "tune-result-v1") embedded in ilpd autotune
  // responses and bench rows.
  [[nodiscard]] std::string to_json() const;
};

// Evaluation backend.  Batch interfaces return one entry per input config at
// the same index; implementations may run members concurrently but must not
// reorder results.
class Evaluator {
 public:
  struct Analysis {
    bool ok = false;
    IrFeatures features;
    std::string error;
  };
  struct Measurement {
    bool ok = false;
    std::uint64_t cycles = 0;
    // CycleProfile mem-wait slot share of the run (cached alongside cycles);
    // the default seed's value feeds the cost model's load correction.
    double mem_wait = 0.0;
    bool cache_hit = false;
    std::string error;
  };

  virtual ~Evaluator() = default;
  // Compile + feature extraction, no simulation (the cheap phase the model
  // ranks from).
  virtual std::vector<Analysis> analyze(const std::string& source, int issue,
                                        const std::vector<TuneConfig>& cfgs) = 0;
  // Compile + simulate; memoized through a content-addressed cache.
  virtual std::vector<Measurement> measure(const std::string& source, int issue,
                                           const std::vector<TuneConfig>& cfgs) = 0;
};

// In-process evaluator for ilpc/bench/tests: optional thread pool for
// concurrency (null: serial) and optional result cache for memoization
// (null: none).  Measurements are cached under a "tune-cell" domain key
// derived from the same shared salt builder as the service cells, and every
// simulation runs profiled with the conservation check enforced.
class LocalEvaluator : public Evaluator {
 public:
  explicit LocalEvaluator(engine::ThreadPool* pool = nullptr,
                          engine::ResultCache* cache = nullptr)
      : pool_(pool), cache_(cache) {}

  std::vector<Analysis> analyze(const std::string& source, int issue,
                                const std::vector<TuneConfig>& cfgs) override;
  std::vector<Measurement> measure(const std::string& source, int issue,
                                   const std::vector<TuneConfig>& cfgs) override;

 private:
  engine::ThreadPool* pool_;
  engine::ResultCache* cache_;
};

TuneResult autotune(const std::string& source, const TuneOptions& opts,
                    Evaluator& eval);
// Convenience overload running on a LocalEvaluator.
TuneResult autotune(const std::string& source, const TuneOptions& opts = {},
                    engine::ThreadPool* pool = nullptr,
                    engine::ResultCache* cache = nullptr);

// Fixed-subgrid pruning audit — the cost model's accountability contract.
//
// Evaluates `grid` twice over the same evaluator: once pruned (measure the
// five paper seeds, calibrate, simulate only the model-ranked top
// `sim_fraction` of the rest) and once exhaustively (measure everything —
// the ground truth; the shared cache makes the overlap free).  Because the
// ground truth covers the pruned-away set too, the audit reports exactly
// what pruning cost: whether the pruned pass still found the true best, and
// the precision of the pruned set (how many skipped configs were indeed not
// better than the found best).
struct PruningAudit {
  bool ok = false;
  std::string error;
  std::uint64_t exhaustive_best = 0;  // true min cycles over the whole grid
  std::uint64_t pruned_best = 0;      // min cycles over the simulated subset
  std::uint64_t grid_size = 0;
  std::uint64_t simulated = 0;  // seeds + model-ranked survivors
  std::uint64_t pruned = 0;     // configs never simulated by the pruned pass
  std::uint64_t true_negatives = 0;  // pruned configs with cycles >= pruned_best
  double model_mape = 0.0;

  [[nodiscard]] bool equal_best() const { return pruned_best == exhaustive_best; }
  [[nodiscard]] double pruned_fraction() const {
    return grid_size == 0 ? 0.0
                          : static_cast<double>(pruned) /
                                static_cast<double>(grid_size);
  }
  [[nodiscard]] double precision() const {
    return pruned == 0 ? 1.0
                       : static_cast<double>(true_negatives) /
                             static_cast<double>(pruned);
  }
};

// `grid` must contain the five paper seed configs (the calibration set); the
// default grid below does.  Only `opts.issue` and `opts.sim_fraction` apply.
PruningAudit audit_pruning(const std::string& source, const TuneOptions& opts,
                           const std::vector<TuneConfig>& grid, Evaluator& eval);

// The default audit sub-grid: every level x unroll {1,2,4,8,16}, list
// scheduler, no nest passes (25 configs, seeds included).
[[nodiscard]] std::vector<TuneConfig> default_audit_grid();

}  // namespace ilp::tune
