#include "tune/tune.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>
#include <numeric>
#include <set>

#include "harness/cache_key.hpp"
#include "sim/profile.hpp"
#include "harness/experiment.hpp"
#include "support/strings.hpp"
#include "workloads/suite.hpp"

namespace ilp::tune {

namespace {

// Knob grids for single-knob mutations.  Sorted, so neighbor generation
// order — and therefore every downstream tie-break — is deterministic.
constexpr std::array<int, 5> kUnrollGrid = {1, 2, 4, 8, 16};
constexpr std::array<int, 4> kTileGrid = {4, 8, 16, 32};

Workload adhoc_workload(const std::string& source) {
  Workload w;
  w.name = "tune";
  w.source = source;
  return w;
}

}  // namespace

std::uint64_t TuneConfig::order_key() const {
  // level(3) | unroll(7) | sched(1) | nest flags(4) | tile_size(13): dense
  // enough to be unique over the legal knob ranges, ordered so seeds sort by
  // level and neighbors sort stably by which knob mutated.
  std::uint64_t k = static_cast<std::uint64_t>(level) & 0x7u;
  k = (k << 7) | (static_cast<std::uint64_t>(unroll) & 0x7fu);
  k = (k << 1) | (scheduler == SchedulerKind::Modulo ? 1u : 0u);
  k = (k << 1) | (nest.interchange ? 1u : 0u);
  k = (k << 1) | (nest.fuse ? 1u : 0u);
  k = (k << 1) | (nest.fission ? 1u : 0u);
  k = (k << 1) | (nest.tile ? 1u : 0u);
  k = (k << 13) | (static_cast<std::uint64_t>(nest.tile_size) & 0x1fffu);
  return k;
}

std::string TuneConfig::name() const {
  std::string out = strformat("%s/u%d/%s", level_name(level), unroll,
                              scheduler_kind_name(scheduler));
  if (nest.interchange) out += "+interchange";
  if (nest.fuse) out += "+fuse";
  if (nest.fission) out += "+fission";
  if (nest.tile) out += strformat("+tile%d", nest.tile_size);
  return out;
}

std::string TuneConfig::to_json() const {
  return strformat(
      "{\"level\": \"%s\", \"unroll\": %d, \"scheduler\": \"%s\", "
      "\"nest\": {\"interchange\": %s, \"fuse\": %s, \"fission\": %s, "
      "\"tile\": %s, \"tile_size\": %d}}",
      level_name(level), unroll, scheduler_kind_name(scheduler),
      nest.interchange ? "true" : "false", nest.fuse ? "true" : "false",
      nest.fission ? "true" : "false", nest.tile ? "true" : "false",
      nest.tile_size);
}

TuneConfig default_config() { return TuneConfig{}; }

CompileOptions to_compile_options(const TuneConfig& c) {
  CompileOptions opts;
  opts.unroll.max_factor = c.unroll;
  opts.nest = c.nest;
  opts.scheduler = c.scheduler;
  return opts;
}

std::string TuneResult::signature() const {
  std::string out = strformat(
      "ok=%d best=%s cycles=%" PRIu64 " lev4=%" PRIu64 " rounds=%d "
      "considered=%" PRIu64 " simulated=%" PRIu64 " pruned=%" PRIu64 "\n",
      ok ? 1 : 0, best.name().c_str(), best_cycles, lev4_cycles, rounds,
      considered, simulated, pruned);
  for (const CandidateEval& e : evals)
    out += strformat("r%d %s sim=%d ok=%d cycles=%" PRIu64 "\n", e.round,
                     e.config.name().c_str(), e.simulated ? 1 : 0, e.ok ? 1 : 0,
                     e.cycles);
  return out;
}

std::string TuneResult::to_json() const {
  return strformat(
      "{\"schema\": \"tune-result-v1\", \"ok\": %s, \"stopped_early\": %s, "
      "\"best\": %s, \"best_name\": \"%s\", \"best_cycles\": %" PRIu64
      ", \"lev4_cycles\": %" PRIu64 ", \"speedup_vs_lev4\": %.4f, "
      "\"rounds\": %d, \"candidates\": {\"considered\": %" PRIu64
      ", \"simulated\": %" PRIu64 ", \"pruned\": %" PRIu64
      ", \"cache_hits\": %" PRIu64 "}, \"model_mape\": %.4f%s}",
      ok ? "true" : "false", stopped_early ? "true" : "false",
      best.to_json().c_str(), best.name().c_str(), best_cycles, lev4_cycles,
      speedup_vs_lev4(), rounds, considered, simulated, pruned, cache_hits,
      model_mape,
      error.empty()
          ? ""
          : strformat(", \"error\": \"%s\"", json_escape(error).c_str())
                .c_str());
}

// LocalEvaluator ------------------------------------------------------------

namespace {

std::uint64_t tune_cell_key(const std::string& source, int issue,
                            const TuneConfig& c) {
  engine::HashStream h;
  hash_domain_salt(h, "tune-cell");
  // Same field set as the ilpd cell (shared salt builder) so a knob bump
  // rolls this domain over with the rest.
  h.u64(service_cell_key(source, c.level, std::nullopt, c.nest, c.scheduler,
                         issue, c.unroll, 0));
  return h.digest();
}

Evaluator::Measurement measure_one(const std::string& source, int issue,
                                   const TuneConfig& c) {
  Evaluator::Measurement out;
  const MachineModel m = MachineModel::issue(issue);
  auto compiled =
      try_compile_workload(adhoc_workload(source), c.level, m, to_compile_options(c));
  if (!compiled) {
    out.error = compiled.error_message();
    return out;
  }
  // Profiled run: the conservation check is the tuner's per-candidate
  // oracle — a simulated result whose slot accounting does not close is a
  // bug, never a winner.
  auto sim = try_simulate_profile(compiled->fn, m);
  if (!sim) {
    out.error = sim.error_message();
    return out;
  }
  if (std::string violation = sim->profile.check_conservation(); !violation.empty()) {
    out.error = "profile conservation violated: " + violation;
    return out;
  }
  out.ok = true;
  out.cycles = sim->result.cycles;
  out.mem_wait = sim->profile.fraction(StallCause::MemWait);
  return out;
}

}  // namespace

std::vector<Evaluator::Analysis> LocalEvaluator::analyze(
    const std::string& source, int issue, const std::vector<TuneConfig>& cfgs) {
  const MachineModel m = MachineModel::issue(issue);
  auto one = [&source, &m](const TuneConfig& c) {
    Analysis a;
    auto compiled = try_compile_workload(adhoc_workload(source), c.level, m,
                                         to_compile_options(c));
    if (!compiled) {
      a.error = compiled.error_message();
      return a;
    }
    a.ok = true;
    a.features = extract_features(compiled->fn, m);
    return a;
  };
  std::vector<Analysis> out(cfgs.size());
  if (pool_ == nullptr || cfgs.size() < 2) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = one(cfgs[i]);
    return out;
  }
  std::vector<std::future<Analysis>> futures;
  futures.reserve(cfgs.size());
  for (const TuneConfig& c : cfgs)
    futures.push_back(pool_->submit([&one, c] { return one(c); }));
  for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = futures[i].get();
  return out;
}

std::vector<Evaluator::Measurement> LocalEvaluator::measure(
    const std::string& source, int issue, const std::vector<TuneConfig>& cfgs) {
  auto one = [this, &source, issue](const TuneConfig& c) {
    Measurement out;
    const std::uint64_t key = cache_ ? tune_cell_key(source, issue, c) : 0;
    if (cache_ != nullptr) {
      if (auto payload = cache_->lookup(key)) {
        std::uint64_t cycles = 0;
        double mem_wait = 0.0;
        if (std::sscanf(payload->c_str(), "tune-v1 ok %" SCNu64 " %lf", &cycles,
                        &mem_wait) == 2) {
          out.ok = true;
          out.cycles = cycles;
          out.mem_wait = mem_wait;
          out.cache_hit = true;
          return out;
        }
        cache_->invalidate(key);  // stale schema or an encoded error: recompute
      }
    }
    out = measure_one(source, issue, c);
    if (cache_ != nullptr && out.ok)
      cache_->store(key, strformat("tune-v1 ok %" PRIu64 " %.9f", out.cycles,
                                   out.mem_wait));
    return out;
  };
  std::vector<Measurement> out(cfgs.size());
  if (pool_ == nullptr || cfgs.size() < 2) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = one(cfgs[i]);
    return out;
  }
  std::vector<std::future<Measurement>> futures;
  futures.reserve(cfgs.size());
  for (const TuneConfig& c : cfgs)
    futures.push_back(pool_->submit([&one, c] { return one(c); }));
  for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = futures[i].get();
  return out;
}

// Search core ---------------------------------------------------------------

namespace {

// Single-knob mutations of `c`, in a fixed order.
std::vector<TuneConfig> neighbors(const TuneConfig& c) {
  std::vector<TuneConfig> out;
  for (const OptLevel l : kLevels) {
    TuneConfig n = c;
    n.level = l;
    out.push_back(n);
  }
  for (const int u : kUnrollGrid) {
    TuneConfig n = c;
    n.unroll = u;
    out.push_back(n);
  }
  for (const SchedulerKind s : {SchedulerKind::List, SchedulerKind::Modulo}) {
    TuneConfig n = c;
    n.scheduler = s;
    out.push_back(n);
  }
  for (int flag = 0; flag < 4; ++flag) {
    TuneConfig n = c;
    bool* f = flag == 0   ? &n.nest.interchange
              : flag == 1 ? &n.nest.fuse
              : flag == 2 ? &n.nest.fission
                          : &n.nest.tile;
    *f = !*f;
    out.push_back(n);
  }
  if (c.nest.tile)
    for (const int ts : kTileGrid) {
      TuneConfig n = c;
      n.nest.tile_size = ts;
      out.push_back(n);
    }
  return out;
}

struct Simulated {
  TuneConfig config;
  std::uint64_t cycles = 0;

  // The deterministic "better" order: fewer cycles, then lower config key.
  [[nodiscard]] bool better_than(const Simulated& o) const {
    if (cycles != o.cycles) return cycles < o.cycles;
    return config.order_key() < o.config.order_key();
  }
};

}  // namespace

TuneResult autotune(const std::string& source, const TuneOptions& opts,
                    Evaluator& eval) {
  TuneResult result;
  const int max_sims = std::max(opts.max_sims, static_cast<int>(kLevels.size()));
  int sims_left = max_sims;

  CostModel model;  // mem-wait share folded in after the first seed lands
  std::set<std::uint64_t> visited;
  std::vector<Simulated> ranked;  // every simulated-ok candidate, kept sorted

  auto cancelled = [&] { return opts.cancelled && opts.cancelled(); };

  // Evaluates one frontier: analyze everything, rank by predicted cycles,
  // simulate the surviving fraction, feed the truth back into the model.
  // `simulate_all` bypasses pruning (the seed round, and exhaustive mode).
  auto run_round = [&](const std::vector<TuneConfig>& frontier, int round,
                       bool simulate_all) {
    result.considered += frontier.size();
    const auto analyses = eval.analyze(source, opts.issue, frontier);

    struct Cand {
      std::size_t idx;
      double predicted;
    };
    std::vector<Cand> viable;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!analyses[i].ok) {
        CandidateEval e;
        e.config = frontier[i];
        e.round = round;
        e.ok = false;
        e.error = analyses[i].error;
        result.evals.push_back(std::move(e));
        continue;
      }
      viable.push_back({i, model.predict(analyses[i].features, frontier[i].level)});
    }
    // Rank by (predicted, config order): the order keys break prediction
    // ties deterministically, including the uncalibrated all-equal case.
    std::sort(viable.begin(), viable.end(), [&](const Cand& a, const Cand& b) {
      if (a.predicted != b.predicted) return a.predicted < b.predicted;
      return frontier[a.idx].order_key() < frontier[b.idx].order_key();
    });
    std::size_t n_sim = viable.size();
    if (!simulate_all && opts.use_cost_model) {
      n_sim = static_cast<std::size_t>(
          std::ceil(opts.sim_fraction * static_cast<double>(viable.size())));
      n_sim = std::max(n_sim, static_cast<std::size_t>(
                                  std::min<std::size_t>(viable.size(),
                                                        static_cast<std::size_t>(
                                                            opts.beam_width))));
    }
    n_sim = std::min(n_sim, static_cast<std::size_t>(std::max(0, sims_left)));

    // Survivors go back to frontier order so evaluator batches — and the
    // calibration updates below — are independent of the ranking's history.
    std::vector<std::size_t> sim_idx, pruned_idx;
    for (std::size_t k = 0; k < viable.size(); ++k)
      (k < n_sim ? sim_idx : pruned_idx).push_back(viable[k].idx);
    std::sort(sim_idx.begin(), sim_idx.end());
    std::sort(pruned_idx.begin(), pruned_idx.end());

    std::vector<TuneConfig> to_sim;
    to_sim.reserve(sim_idx.size());
    for (const std::size_t i : sim_idx) to_sim.push_back(frontier[i]);
    const auto measurements = eval.measure(source, opts.issue, to_sim);
    sims_left -= static_cast<int>(to_sim.size());

    // The default seed's measured mem-wait share parameterizes the model's
    // load correction; install it before this batch's observations so the
    // calibration ratios and later predictions use the same raw estimate.
    if (round == 0)
      for (std::size_t k = 0; k < to_sim.size(); ++k)
        if (measurements[k].ok && to_sim[k] == default_config())
          model.set_mem_wait_share(measurements[k].mem_wait);

    for (std::size_t k = 0; k < sim_idx.size(); ++k) {
      const std::size_t i = sim_idx[k];
      CandidateEval e;
      e.config = frontier[i];
      e.round = round;
      e.simulated = true;
      e.predicted = model.predict(analyses[i].features, frontier[i].level);
      const auto& meas = measurements[k];
      if (meas.ok) {
        e.cycles = meas.cycles;
        e.cache_hit = meas.cache_hit;
        ++result.simulated;
        if (meas.cache_hit) ++result.cache_hits;
        model.observe(analyses[i].features, frontier[i].level, meas.cycles);
        ranked.push_back({frontier[i], meas.cycles});
      } else {
        e.ok = false;
        e.error = meas.error;
        ++result.simulated;
      }
      result.evals.push_back(std::move(e));
    }
    for (const std::size_t i : pruned_idx) {
      CandidateEval e;
      e.config = frontier[i];
      e.round = round;
      e.predicted = model.predict(analyses[i].features, frontier[i].level);
      result.evals.push_back(std::move(e));
      ++result.pruned;
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Simulated& a, const Simulated& b) { return a.better_than(b); });
  };

  // Round 0: the paper's five levels at the default knobs.
  std::vector<TuneConfig> seeds;
  for (const OptLevel l : kLevels) {
    TuneConfig c;
    c.level = l;
    seeds.push_back(c);
    visited.insert(c.order_key());
  }
  run_round(seeds, 0, /*simulate_all=*/true);

  for (const CandidateEval& e : result.evals)
    if (e.simulated && e.ok && e.config == default_config())
      result.lev4_cycles = e.cycles;

  if (ranked.empty()) {
    // Every seed failed: surface the first error (deterministic order).
    result.error = result.evals.empty() ? "no candidates" : result.evals[0].error;
    result.model_mape = model.mape();
    return result;
  }

  // Mutation rounds.
  for (int round = 1; round <= opts.max_rounds; ++round) {
    if (cancelled()) {
      result.stopped_early = true;
      break;
    }
    if (sims_left <= 0) break;
    const std::uint64_t best_before = ranked.front().cycles;

    // Frontier: single-knob mutations of the current beam, deduplicated
    // against everything visited, in order-key order.
    std::vector<TuneConfig> frontier;
    const std::size_t beam =
        std::min(ranked.size(), static_cast<std::size_t>(std::max(1, opts.beam_width)));
    for (std::size_t b = 0; b < beam; ++b)
      for (const TuneConfig& n : neighbors(ranked[b].config))
        if (visited.insert(n.order_key()).second) frontier.push_back(n);
    if (frontier.empty()) break;
    std::sort(frontier.begin(), frontier.end(),
              [](const TuneConfig& a, const TuneConfig& b) {
                return a.order_key() < b.order_key();
              });

    run_round(frontier, round, /*simulate_all=*/!opts.use_cost_model);
    result.rounds = round;
    if (ranked.front().cycles >= best_before) break;  // hill-climb: no gain
  }

  result.ok = true;
  result.best = ranked.front().config;
  result.best_cycles = ranked.front().cycles;
  result.model_mape = model.mape();
  return result;
}

TuneResult autotune(const std::string& source, const TuneOptions& opts,
                    engine::ThreadPool* pool, engine::ResultCache* cache) {
  LocalEvaluator eval(pool, cache);
  return autotune(source, opts, eval);
}

// Pruning audit -------------------------------------------------------------

std::vector<TuneConfig> default_audit_grid() {
  std::vector<TuneConfig> grid;
  for (const OptLevel l : kLevels)
    for (const int u : kUnrollGrid) {
      TuneConfig c;
      c.level = l;
      c.unroll = u;
      grid.push_back(c);
    }
  return grid;
}

PruningAudit audit_pruning(const std::string& source, const TuneOptions& opts,
                           const std::vector<TuneConfig>& grid, Evaluator& eval) {
  PruningAudit audit;
  audit.grid_size = grid.size();

  CostModel model;
  const auto analyses = eval.analyze(source, opts.issue, grid);

  // Split the grid into the five calibration seeds and the rest.
  std::vector<std::size_t> seed_idx, rest_idx;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    TuneConfig seed_shape;  // default knobs at this level
    seed_shape.level = grid[i].level;
    (grid[i] == seed_shape ? seed_idx : rest_idx).push_back(i);
  }
  if (seed_idx.size() != kLevels.size()) {
    audit.error = strformat("grid must contain the %zu paper seeds, found %zu",
                            kLevels.size(), seed_idx.size());
    return audit;
  }

  // Pruned pass: measure the seeds, calibrate, rank the rest, simulate the
  // top fraction.  Batches stay in grid order for determinism.
  std::vector<TuneConfig> seeds;
  for (const std::size_t i : seed_idx) seeds.push_back(grid[i]);
  const auto seed_meas = eval.measure(source, opts.issue, seeds);
  for (std::size_t k = 0; k < seed_idx.size(); ++k) {
    const std::size_t i = seed_idx[k];
    if (!seed_meas[k].ok) {
      audit.error = seed_meas[k].error;
      return audit;
    }
    if (grid[i] == default_config())
      model.set_mem_wait_share(seed_meas[k].mem_wait);
  }
  for (std::size_t k = 0; k < seed_idx.size(); ++k)
    model.observe(analyses[seed_idx[k]].features, grid[seed_idx[k]].level,
                  seed_meas[k].cycles);

  struct Cand {
    std::size_t idx;
    double predicted;
  };
  std::vector<Cand> viable;
  for (const std::size_t i : rest_idx) {
    if (!analyses[i].ok) continue;  // uncompilable: not a candidate either way
    viable.push_back({i, model.predict(analyses[i].features, grid[i].level)});
  }
  std::sort(viable.begin(), viable.end(), [&](const Cand& a, const Cand& b) {
    if (a.predicted != b.predicted) return a.predicted < b.predicted;
    return grid[a.idx].order_key() < grid[b.idx].order_key();
  });
  const auto n_sim = static_cast<std::size_t>(
      std::ceil(opts.sim_fraction * static_cast<double>(viable.size())));
  std::vector<std::size_t> survive_idx, pruned_idx;
  for (std::size_t k = 0; k < viable.size(); ++k)
    (k < n_sim ? survive_idx : pruned_idx).push_back(viable[k].idx);
  std::sort(survive_idx.begin(), survive_idx.end());
  std::sort(pruned_idx.begin(), pruned_idx.end());

  std::vector<TuneConfig> survivors;
  for (const std::size_t i : survive_idx) survivors.push_back(grid[i]);
  const auto surv_meas = eval.measure(source, opts.issue, survivors);

  audit.simulated = seed_idx.size() + survive_idx.size();
  audit.pruned = pruned_idx.size();
  audit.pruned_best = UINT64_MAX;
  for (const auto& m : seed_meas)
    if (m.ok) audit.pruned_best = std::min(audit.pruned_best, m.cycles);
  for (std::size_t k = 0; k < survive_idx.size(); ++k)
    if (surv_meas[k].ok) {
      audit.pruned_best = std::min(audit.pruned_best, surv_meas[k].cycles);
      model.observe(analyses[survive_idx[k]].features,
                    grid[survive_idx[k]].level, surv_meas[k].cycles);
    }

  // Ground truth: measure the pruned-away set too (cache makes the rest
  // free), so the audit can say exactly what pruning would have missed.
  std::vector<TuneConfig> skipped;
  for (const std::size_t i : pruned_idx) skipped.push_back(grid[i]);
  const auto skip_meas = eval.measure(source, opts.issue, skipped);
  audit.exhaustive_best = audit.pruned_best;
  for (const auto& m : skip_meas) {
    if (!m.ok) continue;
    audit.exhaustive_best = std::min(audit.exhaustive_best, m.cycles);
    if (m.cycles >= audit.pruned_best) ++audit.true_negatives;
  }

  audit.model_mape = model.mape();
  audit.ok = true;
  return audit;
}

}  // namespace ilp::tune
