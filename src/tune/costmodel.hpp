// Analytic-then-calibrated cost model for the autotuner.
//
// The model answers one question per candidate configuration: "roughly how
// many cycles will the simulator report for this compiled function?" — fast
// enough to ask for every frontier member, so only the promising fraction is
// actually simulated.  It has two layers:
//
//   1. An *analytic* estimate from static IR features: per block, the
//      scoreboard critical path under the machine's Table-1 latencies and
//      the issue-width floor ceil(insts/width), whichever binds, scaled by a
//      trip-count estimate (exact for counted loops with an immediate bound
//      and an LDI-initialized induction register; a fixed default otherwise).
//   2. An online *calibration* layer fit from the candidates that were
//      simulated anyway (the seeds, then every survivor): the running mean
//      of true/analytic per transformation level — which absorbs the
//      systematic errors the analytic layer cannot see (actual trip counts,
//      cross-block overlap, stall pile-ups) — plus a memory-wait correction
//      scaled by the seed profile's CycleProfile mem_wait share.
//
// Predictions are *only* used to rank candidates within one tuning run, so
// per-run calibration is the right scope; accuracy is reported per run
// (mean absolute percentage error + pruning precision) for auditability.
#pragma once

#include <cstdint>

#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "trans/level.hpp"

namespace ilp::tune {

// Static features of one compiled candidate, extracted without simulating.
struct IrFeatures {
  std::uint64_t analytic_cycles = 0;  // sum over blocks of cycles x trips
  std::uint64_t load_slots = 0;       // loads x trips (memory-wait exposure)
  std::uint64_t static_insts = 0;
  std::uint64_t blocks = 0;
  std::uint64_t counted_loops = 0;    // loops with an exact trip estimate
  std::uint64_t default_loops = 0;    // loops that fell back to the default
};

// Trip estimate used when a loop's count cannot be derived statically.
inline constexpr std::int64_t kDefaultTrips = 16;

IrFeatures extract_features(const Function& fn, const MachineModel& m);

class CostModel {
 public:
  // `mem_wait_share` is the fraction of issue slots the seed profile
  // attributes to memory waits (CycleProfile::fraction(StallCause) of the
  // default config); it scales the per-load correction term.
  explicit CostModel(double mem_wait_share = 0.0)
      : mem_wait_share_(mem_wait_share) {}

  // Installs the measured share once the seed round's default config lands;
  // call before any observe() of that round so raw() stays consistent
  // between calibration and prediction.
  void set_mem_wait_share(double s) { mem_wait_share_ = s; }

  // Predicted simulated cycles for a candidate compiled at `level`.
  [[nodiscard]] double predict(const IrFeatures& f, OptLevel level) const;

  // Feeds one simulated ground truth back into the calibration layer.  Call
  // in deterministic (submission-index) order: the running means make the
  // model state — and therefore later pruning decisions — order-sensitive.
  void observe(const IrFeatures& f, OptLevel level, std::uint64_t true_cycles);

  // Mean absolute percentage error of predict() at observe() time, over all
  // observations with at least one prior calibration point.
  [[nodiscard]] double mape() const;
  [[nodiscard]] int observations() const { return err_n_ + uncalibrated_n_; }

 private:
  [[nodiscard]] double raw(const IrFeatures& f) const;

  struct Ratio {
    double sum = 0.0;
    int n = 0;
  };
  Ratio per_level_[5];
  Ratio global_;
  double mem_wait_share_;
  double abs_pct_err_sum_ = 0.0;
  int err_n_ = 0;
  int uncalibrated_n_ = 0;
};

}  // namespace ilp::tune
