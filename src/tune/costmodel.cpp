#include "tune/costmodel.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "ir/reg.hpp"

namespace ilp::tune {

namespace {

// Initial value of the induction register: the last write to it in the
// preheader, when that write is a load-immediate.  Anything else (copies,
// computed starts) defeats the static trip estimate.
std::optional<std::int64_t> ldi_init(const Function& fn, BlockId pre, const Reg& iv) {
  const Block& b = fn.block(pre);
  for (auto it = b.insts.rbegin(); it != b.insts.rend(); ++it) {
    if (!it->writes(iv)) continue;
    if (it->op == Opcode::LDI) return it->ival;
    return std::nullopt;
  }
  return std::nullopt;
}

// Body executions of a counted loop entered with iv == init.  The body runs
// once unconditionally (the preheader falls into it), then while the
// back-edge comparison of the *updated* iv holds.
std::int64_t counted_trips(const CountedLoopInfo& c, std::int64_t init) {
  const std::int64_t step = c.step;
  const std::int64_t dist = c.bound_imm - init;
  auto ceil_div = [](std::int64_t a, std::int64_t b) {
    return a <= 0 ? 0 : (a + b - 1) / b;
  };
  std::int64_t t = -1;
  switch (c.cmp) {
    case Opcode::BLT:
      if (step > 0) t = ceil_div(dist, step);
      break;
    case Opcode::BLE:
      if (step > 0) t = ceil_div(dist + 1, step);
      break;
    case Opcode::BGT:
      if (step < 0) t = ceil_div(-dist, -step);
      break;
    case Opcode::BGE:
      if (step < 0) t = ceil_div(-dist + 1, -step);
      break;
    case Opcode::BNE:
      if (step != 0 && dist % step == 0 && dist / step >= 0) t = dist / step;
      break;
    default:
      break;
  }
  return t < 1 ? -1 : t;
}

}  // namespace

IrFeatures extract_features(const Function& fn, const MachineModel& m) {
  IrFeatures f;
  f.static_insts = fn.num_insts();
  f.blocks = fn.num_blocks();

  const Cfg cfg(fn);
  const Dominators dom(cfg);

  // Per-block execution multiplier: the product of trip estimates of every
  // natural loop containing the block, so tiled/restructured nests weigh
  // their inner blocks more heavily than their controls.
  std::vector<double> mult(fn.num_blocks(), 1.0);
  const auto simple = find_simple_loops(cfg, dom);
  for (const NaturalLoop& loop : find_natural_loops(cfg, dom)) {
    std::int64_t trips = -1;
    // Self-loops may carry the counted pattern the unroller recognizes; for
    // those with an immediate bound and a visible init the estimate is exact
    // (and automatically shrinks by the unroll factor: the kernel's step is
    // the scaled one).
    for (const SimpleLoop& s : simple) {
      if (s.body != loop.header) continue;
      if (const auto c = match_counted_loop(fn, s)) {
        if (c->bound_is_imm) {
          if (const auto init = ldi_init(fn, s.preheader, c->iv))
            trips = counted_trips(*c, *init);
          else
            // No visible init (e.g. the unrolled kernel, whose iv arrives
            // from the preconditioning loop): assume a zero start.  The
            // absolute count may be off by the unknown offset, but the
            // bound/step ratio still shrinks with the unroll factor, which
            // is what the ranking needs; a flat default would instead make
            // the estimate grow with the duplicated body.
            trips = counted_trips(*c, 0);
        }
      }
      break;
    }
    if (trips < 0) {
      trips = kDefaultTrips;
      ++f.default_loops;
    } else {
      ++f.counted_loops;
    }
    for (const BlockId b : loop.blocks) {
      double& v = mult[fn.layout_index(b)];
      v = std::min(v * static_cast<double>(trips), 1e12);
    }
  }

  // Per-block cost: dataflow critical path under Table-1 latencies vs. the
  // issue-width floor, whichever binds.  Register ready-times are tracked in
  // a dense table; memory ordering and cross-block overlap are ignored — the
  // calibration layer absorbs those.
  const std::size_t nregs =
      (static_cast<std::size_t>(
           std::max(fn.num_regs(RegClass::Int), fn.num_regs(RegClass::Fp))) +
       1)
      << 1;
  std::vector<std::uint64_t> ready(nregs, 0);
  double total = 0.0;
  double load_slots = 0.0;
  const int width = std::max(1, m.issue_width);
  for (const Block& b : fn.blocks()) {
    if (b.insts.empty()) continue;
    std::fill(ready.begin(), ready.end(), 0);
    std::uint64_t crit = 0;
    std::uint64_t loads = 0;
    for (const Instruction& in : b.insts) {
      std::uint64_t start = 0;
      for (const Reg& r : in.uses()) start = std::max(start, ready[RegKey::key(r)]);
      const std::uint64_t fin =
          start + static_cast<std::uint64_t>(std::max(1, m.latency(in.op)));
      if (in.has_dest()) ready[RegKey::key(in.dst)] = fin;
      crit = std::max(crit, fin);
      if (in.is_load()) ++loads;
    }
    const std::uint64_t floor =
        (static_cast<std::uint64_t>(b.insts.size()) +
         static_cast<std::uint64_t>(width) - 1) /
        static_cast<std::uint64_t>(width);
    const double cycles = static_cast<double>(std::max(crit, floor));
    const double k = mult[fn.layout_index(b.id)];
    total += cycles * k;
    load_slots += static_cast<double>(loads) * k;
  }
  f.analytic_cycles = static_cast<std::uint64_t>(std::min(total, 1e18));
  f.load_slots = static_cast<std::uint64_t>(std::min(load_slots, 1e18));
  return f;
}

double CostModel::raw(const IrFeatures& f) const {
  // Memory-wait correction: every load exposes the pipeline to the stalls
  // the seed profile measured; loads on hot paths (high trip multipliers)
  // carry proportionally more of that exposure.
  return static_cast<double>(f.analytic_cycles) +
         mem_wait_share_ * static_cast<double>(f.load_slots);
}

double CostModel::predict(const IrFeatures& f, OptLevel level) const {
  const Ratio& lvl = per_level_[static_cast<std::size_t>(level)];
  double ratio = 1.0;
  if (lvl.n > 0)
    ratio = lvl.sum / lvl.n;
  else if (global_.n > 0)
    ratio = global_.sum / global_.n;
  return raw(f) * ratio;
}

void CostModel::observe(const IrFeatures& f, OptLevel level,
                        std::uint64_t true_cycles) {
  const double base = raw(f);
  if (base <= 0.0 || true_cycles == 0) return;
  const bool calibrated =
      per_level_[static_cast<std::size_t>(level)].n > 0 || global_.n > 0;
  if (calibrated) {
    const double pred = predict(f, level);
    abs_pct_err_sum_ +=
        std::fabs(pred - static_cast<double>(true_cycles)) /
        static_cast<double>(true_cycles);
    ++err_n_;
  } else {
    ++uncalibrated_n_;
  }
  const double r = static_cast<double>(true_cycles) / base;
  Ratio& lvl = per_level_[static_cast<std::size_t>(level)];
  lvl.sum += r;
  ++lvl.n;
  global_.sum += r;
  ++global_.n;
}

double CostModel::mape() const {
  return err_n_ == 0 ? 0.0 : abs_pct_err_sum_ / err_n_;
}

}  // namespace ilp::tune
