// A single RISC instruction.
//
// Encoding conventions:
//   arithmetic   dst = src1 op (src2 | imm)          (src2_is_imm selects)
//   unary        dst = op src1                        (IMOV/FMOV/INEG/FNEG/ITOF/FTOI)
//   constants    dst = imm                            (LDI uses ival, FLDI fval)
//   loads        dst = MEM[src1 + ival]               (array_id = alias set)
//   stores       MEM[src1 + ival] = src2
//   branches     if (src1 cmp (src2|imm)) goto target
//   jump/ret     goto target / leave function
//
// `uid` is a function-unique id assigned by Function::renumber(); analyses use
// it as a stable key across pass-internal reordering.
#pragma once

#include <array>
#include <cstdint>

#include "ir/opcode.hpp"
#include "ir/reg.hpp"
#include "support/assert.hpp"

namespace ilp {

// The registers an instruction reads: at most two, held inline so querying
// uses on the hot path never touches the heap.  Iterates like a container.
class UseList {
 public:
  void push(const Reg& r) {
    ILP_ASSERT(n_ < 2, "UseList overflow");
    regs_[n_++] = r;
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] const Reg& operator[](std::size_t i) const {
    ILP_ASSERT(i < n_, "UseList index out of range");
    return regs_[i];
  }
  [[nodiscard]] const Reg* begin() const { return regs_.data(); }
  [[nodiscard]] const Reg* end() const { return regs_.data() + n_; }

 private:
  std::array<Reg, 2> regs_;
  std::uint8_t n_ = 0;
};

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = 0xffffffffu;

// Alias-set id for memory operations; kMayAliasAll means "unknown, conflicts
// with everything".  Front-end-known arrays get non-negative ids.
inline constexpr std::int32_t kMayAliasAll = -1;

struct Instruction {
  Opcode op = Opcode::NOP;
  Reg dst;
  Reg src1;
  Reg src2;
  bool src2_is_imm = false;
  std::int64_t ival = 0;   // int immediate / memory offset
  double fval = 0.0;       // fp immediate
  std::int32_t array_id = kMayAliasAll;
  BlockId target = kNoBlock;
  std::uint32_t uid = 0;

  [[nodiscard]] bool has_dest() const { return op_has_dest(op); }
  [[nodiscard]] bool is_branch() const { return op_is_branch(op); }
  [[nodiscard]] bool is_control() const { return op_is_control(op); }
  [[nodiscard]] bool is_load() const { return op_is_load(op); }
  [[nodiscard]] bool is_store() const { return op_is_store(op); }
  [[nodiscard]] bool is_memory() const { return op_is_memory(op); }

  // Registers read by this instruction (0..2 entries, no allocation).
  [[nodiscard]] UseList uses() const {
    UseList out;
    if (src1.valid()) out.push(src1);
    if (src2.valid() && !src2_is_imm) out.push(src2);
    return out;
  }

  // True if the instruction reads `r`.
  [[nodiscard]] bool reads(const Reg& r) const {
    return (src1.valid() && src1 == r) || (src2.valid() && !src2_is_imm && src2 == r);
  }
  // True if the instruction writes `r`.
  [[nodiscard]] bool writes(const Reg& r) const { return has_dest() && dst == r; }

  // Replaces every read of `from` with `to`.  Returns number of replacements.
  int replace_uses(const Reg& from, const Reg& to) {
    int n = 0;
    if (src1.valid() && src1 == from) {
      src1 = to;
      ++n;
    }
    if (src2.valid() && !src2_is_imm && src2 == from) {
      src2 = to;
      ++n;
    }
    return n;
  }
};

// Free-standing constructors keep call sites terse inside passes. -----------

inline Instruction make_binary(Opcode op, Reg dst, Reg a, Reg b) {
  ILP_ASSERT(op_is_binary_arith(op), "make_binary requires arithmetic opcode");
  Instruction in;
  in.op = op;
  in.dst = dst;
  in.src1 = a;
  in.src2 = b;
  return in;
}

inline Instruction make_binary_imm(Opcode op, Reg dst, Reg a, std::int64_t imm) {
  ILP_ASSERT(op_is_binary_arith(op) && !op_dest_is_fp(op),
             "make_binary_imm requires integer arithmetic opcode");
  Instruction in;
  in.op = op;
  in.dst = dst;
  in.src1 = a;
  in.src2_is_imm = true;
  in.ival = imm;
  return in;
}

inline Instruction make_binary_fimm(Opcode op, Reg dst, Reg a, double imm) {
  ILP_ASSERT(op_is_binary_arith(op) && op_dest_is_fp(op),
             "make_binary_fimm requires fp arithmetic opcode");
  Instruction in;
  in.op = op;
  in.dst = dst;
  in.src1 = a;
  in.src2_is_imm = true;
  in.fval = imm;
  return in;
}

inline Instruction make_unary(Opcode op, Reg dst, Reg a) {
  Instruction in;
  in.op = op;
  in.dst = dst;
  in.src1 = a;
  return in;
}

inline Instruction make_ldi(Reg dst, std::int64_t v) {
  Instruction in;
  in.op = Opcode::LDI;
  in.dst = dst;
  in.ival = v;
  return in;
}

inline Instruction make_fldi(Reg dst, double v) {
  Instruction in;
  in.op = Opcode::FLDI;
  in.dst = dst;
  in.fval = v;
  return in;
}

inline Instruction make_load(Opcode op, Reg dst, Reg base, std::int64_t off,
                             std::int32_t array_id) {
  ILP_ASSERT(op_is_load(op), "make_load requires load opcode");
  Instruction in;
  in.op = op;
  in.dst = dst;
  in.src1 = base;
  in.ival = off;
  in.array_id = array_id;
  return in;
}

inline Instruction make_store(Opcode op, Reg base, std::int64_t off, Reg value,
                              std::int32_t array_id) {
  ILP_ASSERT(op_is_store(op), "make_store requires store opcode");
  Instruction in;
  in.op = op;
  in.src1 = base;
  in.src2 = value;
  in.ival = off;
  in.array_id = array_id;
  return in;
}

inline Instruction make_branch(Opcode op, Reg a, Reg b, BlockId target) {
  ILP_ASSERT(op_is_branch(op), "make_branch requires branch opcode");
  Instruction in;
  in.op = op;
  in.src1 = a;
  in.src2 = b;
  in.target = target;
  return in;
}

inline Instruction make_branch_imm(Opcode op, Reg a, std::int64_t imm, BlockId target) {
  Instruction in = make_branch(op, a, kNoReg, target);
  in.src2_is_imm = true;
  in.ival = imm;
  return in;
}

inline Instruction make_branch_fimm(Opcode op, Reg a, double imm, BlockId target) {
  Instruction in = make_branch(op, a, kNoReg, target);
  in.src2_is_imm = true;
  in.fval = imm;
  return in;
}

inline Instruction make_jump(BlockId target) {
  Instruction in;
  in.op = Opcode::JUMP;
  in.target = target;
  return in;
}

inline Instruction make_ret() {
  Instruction in;
  in.op = Opcode::RET;
  return in;
}

}  // namespace ilp
