// Structural IR verifier run between passes (and by tests).
//
// Checks, for every instruction, that operand presence/classes match the
// opcode, that branch targets exist, that the function ends every path in
// RET, and that no instruction reads a register that was never defined on
// some path (a cheap forward "may be uninitialized" check).
#pragma once

#include <string>

#include "ir/function.hpp"

namespace ilp {

struct VerifyResult {
  bool ok = true;
  std::string message;  // first failure description
};

VerifyResult verify(const Function& fn);

// Asserts on failure; convenient inside pass pipelines.
void verify_or_die(const Function& fn, const char* when);

}  // namespace ilp
