#include "ir/verifier.hpp"

#include <cstdio>

#include "ir/printer.hpp"
#include "support/assert.hpp"
#include "support/bitvector.hpp"
#include "support/strings.hpp"

namespace ilp {

namespace {

VerifyResult fail(const Function& fn, const Block& b, const Instruction& in,
                  const char* why) {
  VerifyResult r;
  r.ok = false;
  r.message = strformat("verify(%s): %s: in block %s: %s", fn.name().c_str(), why,
                        b.name.c_str(), to_string(in, &fn).c_str());
  return r;
}

bool operand_classes_ok(const Instruction& in) {
  const Opcode op = in.op;
  // Destination class.
  if (in.has_dest()) {
    if (!in.dst.valid()) return false;
    if (op_dest_is_fp(op) != (in.dst.cls == RegClass::Fp)) return false;
  }
  // Sources by opcode family.
  auto int_src = [](const Reg& r) { return r.valid() && r.cls == RegClass::Int; };
  auto fp_src = [](const Reg& r) { return r.valid() && r.cls == RegClass::Fp; };
  switch (op) {
    case Opcode::LDI:
    case Opcode::FLDI:
    case Opcode::JUMP:
    case Opcode::RET:
    case Opcode::NOP:
      return !in.src1.valid() && !in.src2.valid();
    case Opcode::IMOV:
    case Opcode::INEG:
    case Opcode::FTOI:
      return (op == Opcode::FTOI ? fp_src(in.src1) : int_src(in.src1)) && !in.src2.valid();
    case Opcode::FMOV:
    case Opcode::FNEG:
      return fp_src(in.src1) && !in.src2.valid();
    case Opcode::ITOF:
      return int_src(in.src1) && !in.src2.valid();
    case Opcode::LD:
    case Opcode::FLD:
      return int_src(in.src1) && !in.src2.valid();
    case Opcode::ST:
      return int_src(in.src1) && int_src(in.src2);
    case Opcode::FST:
      return int_src(in.src1) && fp_src(in.src2);
    default:
      break;
  }
  if (in.is_branch()) {
    const bool fp = op_is_fp_compare(op);
    if (!(fp ? fp_src(in.src1) : int_src(in.src1))) return false;
    if (in.src2_is_imm) return !in.src2.valid();
    return fp ? fp_src(in.src2) : int_src(in.src2);
  }
  if (op_is_binary_arith(op)) {
    const bool fp = op_dest_is_fp(op);
    if (!(fp ? fp_src(in.src1) : int_src(in.src1))) return false;
    if (in.src2_is_imm) return !in.src2.valid();
    return fp ? fp_src(in.src2) : int_src(in.src2);
  }
  return true;
}

}  // namespace

VerifyResult verify(const Function& fn) {
  if (fn.num_blocks() == 0) return {false, "function has no blocks"};

  // Per-instruction structural checks.
  bool saw_ret = false;
  for (const auto& b : fn.blocks()) {
    for (const auto& in : b.insts) {
      if (!operand_classes_ok(in)) return fail(fn, b, in, "bad operand classes");
      if ((in.is_branch() || in.op == Opcode::JUMP) && in.target >= fn.num_blocks())
        return fail(fn, b, in, "branch to nonexistent block");
      if (in.op == Opcode::RET) saw_ret = true;
      if (in.is_memory() && in.array_id != kMayAliasAll && fn.array(in.array_id) == nullptr)
        return fail(fn, b, in, "memory op references unknown array id");
    }
  }
  if (!saw_ret) return {false, "function has no RET"};

  // The last block in layout must not fall off the end of the function.
  const Block& last = fn.blocks().back();
  if (!last.has_terminator())
    return {false, strformat("last block %s falls through past end of function",
                             last.name.c_str())};

  // Nothing should follow a JUMP/RET inside a block.
  for (const auto& b : fn.blocks()) {
    for (std::size_t i = 0; i + 1 < b.insts.size(); ++i) {
      const Opcode op = b.insts[i].op;
      if (op == Opcode::JUMP || op == Opcode::RET)
        return fail(fn, b, b.insts[i], "unreachable code after terminator");
    }
  }
  return {};
}

void verify_or_die(const Function& fn, const char* when) {
  const VerifyResult r = verify(fn);
  if (!r.ok) {
    std::fprintf(stderr, "IR verification failed %s:\n%s\n%s\n", when, r.message.c_str(),
                 to_string(fn).c_str());
    ILP_ASSERT(false, "IR verification failed");
  }
}

}  // namespace ilp
