// Virtual registers.
//
// The modeled processor (paper Section 3.1) has an unlimited supply of
// registers split into integer and floating-point classes; the compiler works
// exclusively on virtual registers and the allocator reports how many are
// needed.  A Reg is therefore (class, id) with ids dense per class.
#pragma once

#include <cstdint>
#include <functional>

namespace ilp {

enum class RegClass : std::uint8_t { Int, Fp };

struct Reg {
  RegClass cls = RegClass::Int;
  std::uint32_t id = kInvalidId;

  static constexpr std::uint32_t kInvalidId = 0xffffffffu;

  [[nodiscard]] bool valid() const { return id != kInvalidId; }
  [[nodiscard]] bool is_int() const { return valid() && cls == RegClass::Int; }
  [[nodiscard]] bool is_fp() const { return valid() && cls == RegClass::Fp; }

  friend bool operator==(const Reg& a, const Reg& b) {
    return a.cls == b.cls && a.id == b.id;
  }
  friend bool operator!=(const Reg& a, const Reg& b) { return !(a == b); }
  friend bool operator<(const Reg& a, const Reg& b) {
    if (a.cls != b.cls) return static_cast<int>(a.cls) < static_cast<int>(b.cls);
    return a.id < b.id;
  }
};

inline constexpr Reg kNoReg{};

// Dense per-class key useful for indexing vectors sized by register count.
struct RegKey {
  [[nodiscard]] static std::size_t key(const Reg& r) {
    // Interleave classes so a single dense table can hold both.
    return (static_cast<std::size_t>(r.id) << 1) | (r.cls == RegClass::Fp ? 1u : 0u);
  }
};

struct RegHash {
  std::size_t operator()(const Reg& r) const {
    return std::hash<std::size_t>()(RegKey::key(r));
  }
};

}  // namespace ilp
