// Textual rendering of IR for tests, debugging, and example output.
#pragma once

#include <string>

#include "ir/function.hpp"

namespace ilp {

// "r12.i", "r4.f"
std::string to_string(const Reg& r);

// One-line instruction rendering, e.g.:
//   "r4.f = fadd r2.f, r3.f"
//   "r2.f = fld [r1.i + A]"       (offset folded into the symbol when known)
//   "blt r1.i, r5.i -> L1"
// `fn` supplies array names for symbolic memory operands; may be null.
std::string to_string(const Instruction& in, const Function* fn = nullptr);

// Full function listing with block labels.
std::string to_string(const Function& fn);

}  // namespace ilp
