// Function = a loop nest compiled as one unit.
//
// Blocks are *extended* basic blocks: conditional branches may appear in the
// middle of a block (superblock side exits); execution falls through past an
// untaken branch.  The block list is in layout order — a block without a
// terminating JUMP/RET falls through to the next block in the list.
//
// Functions also carry the array symbol table (name, base address, element
// size) used for alias ids, simulation memory initialization, and symbolic
// printing, mirroring what a Fortran front end would know about its arrays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.hpp"
#include "ir/reg.hpp"

namespace ilp {

struct Block {
  BlockId id = kNoBlock;
  std::string name;
  std::vector<Instruction> insts;

  [[nodiscard]] bool empty() const { return insts.empty(); }
  // True if the block ends in an instruction that never falls through.
  [[nodiscard]] bool has_terminator() const {
    if (insts.empty()) return false;
    const Opcode op = insts.back().op;
    return op == Opcode::JUMP || op == Opcode::RET;
  }
};

struct ArrayInfo {
  std::string name;
  std::int64_t base = 0;       // simulated base address
  std::int64_t elem_size = 4;  // bytes per element (paper examples use 4)
  std::int64_t length = 0;     // elements (for simulation initialization)
  bool is_fp = true;
};

class Function {
 public:
  explicit Function(std::string name = "fn") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // Blocks -------------------------------------------------------------------
  BlockId add_block(std::string name);
  [[nodiscard]] Block& block(BlockId id);
  [[nodiscard]] const Block& block(BlockId id) const;
  [[nodiscard]] std::vector<Block>& blocks() { return blocks_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  // Layout index of a block (blocks execute in layout order on fallthrough).
  [[nodiscard]] std::size_t layout_index(BlockId id) const;
  // Block following `id` in layout, or kNoBlock if last.
  [[nodiscard]] BlockId layout_next(BlockId id) const;
  // Inserts an existing-id-free block *after* `after` in layout order.
  BlockId insert_block_after(BlockId after, std::string name);

  // Registers ----------------------------------------------------------------
  Reg new_reg(RegClass cls);
  Reg new_int_reg() { return new_reg(RegClass::Int); }
  Reg new_fp_reg() { return new_reg(RegClass::Fp); }
  [[nodiscard]] std::uint32_t num_regs(RegClass cls) const {
    return cls == RegClass::Int ? next_int_reg_ : next_fp_reg_;
  }
  // Ensures new_reg never hands out ids below `n` for the class (used by
  // builders that pre-assign register numbers).
  void reserve_regs(RegClass cls, std::uint32_t n);

  // Arrays -------------------------------------------------------------------
  std::int32_t add_array(ArrayInfo info);
  [[nodiscard]] const std::vector<ArrayInfo>& arrays() const { return arrays_; }
  [[nodiscard]] const ArrayInfo* array(std::int32_t id) const;
  [[nodiscard]] std::int32_t find_array(std::string_view name) const;

  // Assigns fresh uids to every instruction (stable keys for analyses).
  void renumber();
  [[nodiscard]] std::size_t num_insts() const;

  // Live-out registers: values an observer reads after RET (harness compares
  // these across transformation levels, and DCE must preserve them).
  void add_live_out(Reg r) { live_out_.push_back(r); }
  [[nodiscard]] const std::vector<Reg>& live_out() const { return live_out_; }
  // Wholesale replacement, used by register assignment to retarget live-outs
  // at physical registers (order must be preserved).
  void set_live_out(std::vector<Reg> v) { live_out_ = std::move(v); }

  // Clamps the fresh-register counters to a physical file size after
  // assignment (the simulator sizes its register state from these).
  void reset_reg_counters(std::uint32_t ints, std::uint32_t fps) {
    next_int_reg_ = ints;
    next_fp_reg_ = fps;
  }

 private:
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<std::size_t> block_index_;  // id -> layout position
  std::uint32_t next_int_reg_ = 0;
  std::uint32_t next_fp_reg_ = 0;
  std::uint32_t next_uid_ = 0;
  std::vector<ArrayInfo> arrays_;
  std::vector<Reg> live_out_;
};

}  // namespace ilp
