#include "ir/printer.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace ilp {

std::string to_string(const Reg& r) {
  if (!r.valid()) return "r?.?";
  return strformat("r%u.%c", r.id, r.cls == RegClass::Fp ? 'f' : 'i');
}

namespace {

std::string mem_operand(const Instruction& in, const Function* fn) {
  std::string base = to_string(in.src1);
  const ArrayInfo* arr = fn ? fn->array(in.array_id) : nullptr;
  std::ostringstream os;
  os << "[" << base;
  if (arr) {
    os << " + " << arr->name;
    const std::int64_t extra = in.ival - arr->base;
    if (extra != 0) os << (extra > 0 ? "+" : "") << extra;
  } else if (in.ival != 0) {
    os << (in.ival > 0 ? " + " : " - ") << (in.ival > 0 ? in.ival : -in.ival);
  }
  os << "]";
  return os.str();
}

std::string src2_operand(const Instruction& in, bool fp) {
  if (!in.src2_is_imm) return to_string(in.src2);
  if (fp) return strformat("%g", in.fval);
  return strformat("%lld", static_cast<long long>(in.ival));
}

std::string block_label(const Function* fn, BlockId id) {
  if (fn && id < fn->num_blocks()) return fn->block(id).name;
  return strformat("B%u", id);
}

}  // namespace

std::string to_string(const Instruction& in, const Function* fn) {
  std::ostringstream os;
  switch (in.op) {
    case Opcode::LDI:
      os << to_string(in.dst) << " = " << in.ival;
      break;
    case Opcode::FLDI:
      os << to_string(in.dst) << " = " << strformat("%g", in.fval);
      break;
    case Opcode::IMOV:
    case Opcode::FMOV:
    case Opcode::INEG:
    case Opcode::FNEG:
    case Opcode::ITOF:
    case Opcode::FTOI:
      os << to_string(in.dst) << " = " << opcode_name(in.op) << " " << to_string(in.src1);
      break;
    case Opcode::LD:
    case Opcode::FLD:
      os << to_string(in.dst) << " = " << opcode_name(in.op) << " " << mem_operand(in, fn);
      break;
    case Opcode::ST:
    case Opcode::FST:
      os << opcode_name(in.op) << " " << mem_operand(in, fn) << " = " << to_string(in.src2);
      break;
    case Opcode::JUMP:
      os << "jump -> " << block_label(fn, in.target);
      break;
    case Opcode::RET:
      os << "ret";
      break;
    case Opcode::NOP:
      os << "nop";
      break;
    default:
      if (in.is_branch()) {
        os << opcode_name(in.op) << " " << to_string(in.src1) << ", "
           << src2_operand(in, op_is_fp_compare(in.op)) << " -> " << block_label(fn, in.target);
      } else {
        // Binary arithmetic.
        os << to_string(in.dst) << " = " << opcode_name(in.op) << " " << to_string(in.src1)
           << ", " << src2_operand(in, op_dest_is_fp(in.op));
      }
      break;
  }
  return os.str();
}

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "function " << fn.name() << "\n";
  for (const auto& arr : fn.arrays())
    os << "  array " << arr.name << " base=" << arr.base << " elem=" << arr.elem_size
       << " len=" << arr.length << (arr.is_fp ? " fp" : " int") << "\n";
  for (const auto& b : fn.blocks()) {
    os << b.name << ":\n";
    for (const auto& in : b.insts) os << "  " << to_string(in, &fn) << "\n";
  }
  return os.str();
}

}  // namespace ilp
