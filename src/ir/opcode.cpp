#include "ir/opcode.hpp"

#include "support/assert.hpp"

namespace ilp {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::IADD: return "iadd";
    case Opcode::ISUB: return "isub";
    case Opcode::IMUL: return "imul";
    case Opcode::IMULH: return "imulh";
    case Opcode::IDIV: return "idiv";
    case Opcode::IREM: return "irem";
    case Opcode::ISHL: return "ishl";
    case Opcode::ISHRA: return "ishra";
    case Opcode::ISHRL: return "ishrl";
    case Opcode::IAND: return "iand";
    case Opcode::IOR: return "ior";
    case Opcode::IXOR: return "ixor";
    case Opcode::IMOV: return "imov";
    case Opcode::INEG: return "ineg";
    case Opcode::IMAX: return "imax";
    case Opcode::IMIN: return "imin";
    case Opcode::LDI: return "ldi";
    case Opcode::FADD: return "fadd";
    case Opcode::FSUB: return "fsub";
    case Opcode::FMUL: return "fmul";
    case Opcode::FDIV: return "fdiv";
    case Opcode::FMOV: return "fmov";
    case Opcode::FNEG: return "fneg";
    case Opcode::FMAX: return "fmax";
    case Opcode::FMIN: return "fmin";
    case Opcode::FLDI: return "fldi";
    case Opcode::ITOF: return "itof";
    case Opcode::FTOI: return "ftoi";
    case Opcode::LD: return "ld";
    case Opcode::FLD: return "fld";
    case Opcode::ST: return "st";
    case Opcode::FST: return "fst";
    case Opcode::BEQ: return "beq";
    case Opcode::BNE: return "bne";
    case Opcode::BLT: return "blt";
    case Opcode::BLE: return "ble";
    case Opcode::BGT: return "bgt";
    case Opcode::BGE: return "bge";
    case Opcode::FBEQ: return "fbeq";
    case Opcode::FBNE: return "fbne";
    case Opcode::FBLT: return "fblt";
    case Opcode::FBLE: return "fble";
    case Opcode::FBGT: return "fbgt";
    case Opcode::FBGE: return "fbge";
    case Opcode::JUMP: return "jump";
    case Opcode::RET: return "ret";
    case Opcode::NOP: return "nop";
  }
  ILP_UNREACHABLE("bad opcode");
}

bool op_is_binary_arith(Opcode op) {
  switch (op) {
    case Opcode::IADD:
    case Opcode::ISUB:
    case Opcode::IMUL:
    case Opcode::IMULH:
    case Opcode::IDIV:
    case Opcode::IREM:
    case Opcode::ISHL:
    case Opcode::ISHRA:
    case Opcode::ISHRL:
    case Opcode::IAND:
    case Opcode::IOR:
    case Opcode::IXOR:
    case Opcode::IMAX:
    case Opcode::IMIN:
    case Opcode::FADD:
    case Opcode::FSUB:
    case Opcode::FMUL:
    case Opcode::FDIV:
    case Opcode::FMAX:
    case Opcode::FMIN:
      return true;
    default:
      return false;
  }
}

bool op_is_commutative(Opcode op) {
  switch (op) {
    case Opcode::IADD:
    case Opcode::IMUL:
    case Opcode::IMULH:
    case Opcode::IAND:
    case Opcode::IOR:
    case Opcode::IXOR:
    case Opcode::IMAX:
    case Opcode::IMIN:
    case Opcode::FADD:
    case Opcode::FMUL:
    case Opcode::FMAX:
    case Opcode::FMIN:
      return true;
    default:
      return false;
  }
}

bool op_dest_is_fp(Opcode op) {
  switch (op) {
    case Opcode::FADD:
    case Opcode::FSUB:
    case Opcode::FMUL:
    case Opcode::FDIV:
    case Opcode::FMOV:
    case Opcode::FNEG:
    case Opcode::FMAX:
    case Opcode::FMIN:
    case Opcode::FLDI:
    case Opcode::ITOF:
    case Opcode::FLD:
      return true;
    default:
      return false;
  }
}

Opcode op_invert_branch(Opcode op) {
  switch (op) {
    case Opcode::BEQ: return Opcode::BNE;
    case Opcode::BNE: return Opcode::BEQ;
    case Opcode::BLT: return Opcode::BGE;
    case Opcode::BLE: return Opcode::BGT;
    case Opcode::BGT: return Opcode::BLE;
    case Opcode::BGE: return Opcode::BLT;
    case Opcode::FBEQ: return Opcode::FBNE;
    case Opcode::FBNE: return Opcode::FBEQ;
    case Opcode::FBLT: return Opcode::FBGE;
    case Opcode::FBLE: return Opcode::FBGT;
    case Opcode::FBGT: return Opcode::FBLE;
    case Opcode::FBGE: return Opcode::FBLT;
    default:
      ILP_UNREACHABLE("op_invert_branch on non-branch");
  }
}

Opcode op_swap_branch(Opcode op) {
  switch (op) {
    case Opcode::BEQ: return Opcode::BEQ;
    case Opcode::BNE: return Opcode::BNE;
    case Opcode::BLT: return Opcode::BGT;
    case Opcode::BLE: return Opcode::BGE;
    case Opcode::BGT: return Opcode::BLT;
    case Opcode::BGE: return Opcode::BLE;
    case Opcode::FBEQ: return Opcode::FBEQ;
    case Opcode::FBNE: return Opcode::FBNE;
    case Opcode::FBLT: return Opcode::FBGT;
    case Opcode::FBLE: return Opcode::FBGE;
    case Opcode::FBGT: return Opcode::FBLT;
    case Opcode::FBGE: return Opcode::FBLE;
    default:
      ILP_UNREACHABLE("op_swap_branch on non-branch");
  }
}

}  // namespace ilp
