#include "ir/builder.hpp"

#include "support/assert.hpp"

namespace ilp {

Instruction& IRBuilder::append(Instruction in) {
  ILP_ASSERT(cur_ != kNoBlock, "IRBuilder: no current block");
  auto& insts = fn_.block(cur_).insts;
  insts.push_back(in);
  return insts.back();
}

}  // namespace ilp
