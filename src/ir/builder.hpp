// Fluent construction of IR functions.
//
// Used by the front end's lowering phase, the workload suite, tests, and the
// transformations when they synthesize preheader/cleanup code.
#pragma once

#include "ir/function.hpp"
#include "ir/instruction.hpp"

namespace ilp {

class IRBuilder {
 public:
  explicit IRBuilder(Function& fn) : fn_(fn) {}

  [[nodiscard]] Function& function() { return fn_; }

  BlockId create_block(std::string name) { return fn_.add_block(std::move(name)); }
  void set_block(BlockId id) { cur_ = id; }
  [[nodiscard]] BlockId current_block() const { return cur_; }

  Reg new_int_reg() { return fn_.new_int_reg(); }
  Reg new_fp_reg() { return fn_.new_fp_reg(); }

  // Appends `in` to the current block and returns a reference to it.
  Instruction& append(Instruction in);

  // Integer arithmetic -------------------------------------------------------
  Reg iadd(Reg a, Reg b) { return emit_bin(Opcode::IADD, a, b); }
  Reg iaddi(Reg a, std::int64_t k) { return emit_bini(Opcode::IADD, a, k); }
  Reg isub(Reg a, Reg b) { return emit_bin(Opcode::ISUB, a, b); }
  Reg isubi(Reg a, std::int64_t k) { return emit_bini(Opcode::ISUB, a, k); }
  Reg imul(Reg a, Reg b) { return emit_bin(Opcode::IMUL, a, b); }
  Reg imuli(Reg a, std::int64_t k) { return emit_bini(Opcode::IMUL, a, k); }
  Reg idiv(Reg a, Reg b) { return emit_bin(Opcode::IDIV, a, b); }
  Reg idivi(Reg a, std::int64_t k) { return emit_bini(Opcode::IDIV, a, k); }
  Reg iremi(Reg a, std::int64_t k) { return emit_bini(Opcode::IREM, a, k); }
  Reg irem(Reg a, Reg b) { return emit_bin(Opcode::IREM, a, b); }
  Reg ishli(Reg a, std::int64_t k) { return emit_bini(Opcode::ISHL, a, k); }
  Reg imax(Reg a, Reg b) { return emit_bin(Opcode::IMAX, a, b); }
  Reg imin(Reg a, Reg b) { return emit_bin(Opcode::IMIN, a, b); }
  Reg imov(Reg a) { return emit_un(Opcode::IMOV, a); }
  Reg ldi(std::int64_t v) {
    Reg d = new_int_reg();
    append(make_ldi(d, v));
    return d;
  }
  // In-place variants writing a caller-chosen destination.
  void iadd_to(Reg dst, Reg a, Reg b) { append(make_binary(Opcode::IADD, dst, a, b)); }
  void iaddi_to(Reg dst, Reg a, std::int64_t k) {
    append(make_binary_imm(Opcode::IADD, dst, a, k));
  }
  void imov_to(Reg dst, Reg a) { append(make_unary(Opcode::IMOV, dst, a)); }
  void ldi_to(Reg dst, std::int64_t v) { append(make_ldi(dst, v)); }

  // Floating point ------------------------------------------------------------
  Reg fadd(Reg a, Reg b) { return emit_bin(Opcode::FADD, a, b); }
  Reg fsub(Reg a, Reg b) { return emit_bin(Opcode::FSUB, a, b); }
  Reg fsubi(Reg a, double k) { return emit_binf(Opcode::FSUB, a, k); }
  Reg faddi(Reg a, double k) { return emit_binf(Opcode::FADD, a, k); }
  Reg fmul(Reg a, Reg b) { return emit_bin(Opcode::FMUL, a, b); }
  Reg fmuli(Reg a, double k) { return emit_binf(Opcode::FMUL, a, k); }
  Reg fdiv(Reg a, Reg b) { return emit_bin(Opcode::FDIV, a, b); }
  Reg fdivi(Reg a, double k) { return emit_binf(Opcode::FDIV, a, k); }
  Reg fmax(Reg a, Reg b) { return emit_bin(Opcode::FMAX, a, b); }
  Reg fmin(Reg a, Reg b) { return emit_bin(Opcode::FMIN, a, b); }
  Reg fmov(Reg a) { return emit_un(Opcode::FMOV, a); }
  Reg fneg(Reg a) { return emit_un(Opcode::FNEG, a); }
  Reg itof(Reg a) { return emit_un(Opcode::ITOF, a); }
  Reg ftoi(Reg a) { return emit_un(Opcode::FTOI, a); }
  Reg fldi(double v) {
    Reg d = new_fp_reg();
    append(make_fldi(d, v));
    return d;
  }
  void fmov_to(Reg dst, Reg a) { append(make_unary(Opcode::FMOV, dst, a)); }
  void fldi_to(Reg dst, double v) { append(make_fldi(dst, v)); }
  void fadd_to(Reg dst, Reg a, Reg b) { append(make_binary(Opcode::FADD, dst, a, b)); }

  // Memory ---------------------------------------------------------------------
  Reg ld(Reg base, std::int64_t off, std::int32_t array_id) {
    Reg d = new_int_reg();
    append(make_load(Opcode::LD, d, base, off, array_id));
    return d;
  }
  Reg fld(Reg base, std::int64_t off, std::int32_t array_id) {
    Reg d = new_fp_reg();
    append(make_load(Opcode::FLD, d, base, off, array_id));
    return d;
  }
  void ld_to(Reg dst, Reg base, std::int64_t off, std::int32_t array_id) {
    append(make_load(Opcode::LD, dst, base, off, array_id));
  }
  void fld_to(Reg dst, Reg base, std::int64_t off, std::int32_t array_id) {
    append(make_load(Opcode::FLD, dst, base, off, array_id));
  }
  void st(Reg base, std::int64_t off, Reg value, std::int32_t array_id) {
    append(make_store(Opcode::ST, base, off, value, array_id));
  }
  void fst(Reg base, std::int64_t off, Reg value, std::int32_t array_id) {
    append(make_store(Opcode::FST, base, off, value, array_id));
  }

  // Control ---------------------------------------------------------------------
  void br(Opcode op, Reg a, Reg b, BlockId target) { append(make_branch(op, a, b, target)); }
  void bri(Opcode op, Reg a, std::int64_t k, BlockId target) {
    append(make_branch_imm(op, a, k, target));
  }
  void brf(Opcode op, Reg a, double k, BlockId target) {
    append(make_branch_fimm(op, a, k, target));
  }
  void jump(BlockId target) { append(make_jump(target)); }
  void ret() { append(make_ret()); }

 private:
  Reg emit_bin(Opcode op, Reg a, Reg b) {
    Reg d = fn_.new_reg(op_dest_is_fp(op) ? RegClass::Fp : RegClass::Int);
    append(make_binary(op, d, a, b));
    return d;
  }
  Reg emit_bini(Opcode op, Reg a, std::int64_t k) {
    Reg d = fn_.new_int_reg();
    append(make_binary_imm(op, d, a, k));
    return d;
  }
  Reg emit_binf(Opcode op, Reg a, double k) {
    Reg d = fn_.new_fp_reg();
    append(make_binary_fimm(op, d, a, k));
    return d;
  }
  Reg emit_un(Opcode op, Reg a) {
    Reg d = fn_.new_reg(op_dest_is_fp(op) ? RegClass::Fp : RegClass::Int);
    append(make_unary(op, d, a));
    return d;
  }

  Function& fn_;
  BlockId cur_ = kNoBlock;
};

}  // namespace ilp
