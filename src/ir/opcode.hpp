// Instruction opcodes for the RISC target ISA.
//
// The ISA mirrors the paper's assembly examples: a MIPS-R2000-like
// register-register machine with integer and floating-point arithmetic,
// [base + constant] addressing, and compare-and-branch control flow.
// IMAX/IMIN/FMAX/FMIN are select-form conditional updates produced by
// if-conversion of max/min search patterns during superblock formation;
// search variable expansion (paper Section 2) operates on them.
#pragma once

#include <cstdint>
#include <string_view>

namespace ilp {

enum class Opcode : std::uint8_t {
  // Integer arithmetic/logical (Int ALU, latency 1 unless noted).
  IADD,
  ISUB,
  IMUL,   // latency 3
  IMULH,  // high 64 bits of signed product; latency 3 (MIPS-style HI)
  IDIV,  // latency 10
  IREM,  // latency 10
  ISHL,
  ISHRA,  // arithmetic shift right
  ISHRL,  // logical shift right
  IAND,
  IOR,
  IXOR,
  IMOV,
  INEG,
  IMAX,
  IMIN,
  LDI,  // load integer immediate

  // Floating point (FP ALU latency 3 unless noted).
  FADD,
  FSUB,
  FMUL,  // latency 3
  FDIV,  // latency 10
  FMOV,  // register move, latency 1 (move unit)
  FNEG,  // sign flip, latency 1
  FMAX,
  FMIN,
  FLDI,  // load fp immediate, latency 1

  // Conversions (latency 3).
  ITOF,
  FTOI,

  // Memory (load latency 2, store latency 1).
  LD,   // int load:  dst = MEM[src1 + imm]
  FLD,  // fp load
  ST,   // int store: MEM[src1 + imm] = src2
  FST,  // fp store

  // Control (latency 1, one branch slot per cycle).
  BEQ,
  BNE,
  BLT,
  BLE,
  BGT,
  BGE,
  FBEQ,
  FBNE,
  FBLT,
  FBLE,
  FBGT,
  FBGE,
  JUMP,
  RET,

  NOP,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::NOP) + 1;

[[nodiscard]] std::string_view opcode_name(Opcode op);

// Structural predicates ------------------------------------------------------
//
// These run once or more per instruction in the simulator and dependence
// passes, so they are inline range tests over the enum layout above (the
// static_asserts pin the ranges they rely on).

static_assert(Opcode::LD < Opcode::FLD && Opcode::FLD < Opcode::ST &&
                  Opcode::ST < Opcode::FST && Opcode::FST < Opcode::BEQ &&
                  Opcode::BEQ < Opcode::FBEQ && Opcode::FBGE < Opcode::JUMP &&
                  Opcode::JUMP < Opcode::RET && Opcode::RET < Opcode::NOP,
              "predicates below depend on this opcode ordering");

// Conditional branch.
[[nodiscard]] constexpr bool op_is_branch(Opcode op) {
  return op >= Opcode::BEQ && op <= Opcode::FBGE;
}
// Branch, jump, or ret.
[[nodiscard]] constexpr bool op_is_control(Opcode op) {
  return op >= Opcode::BEQ && op <= Opcode::RET;
}
[[nodiscard]] constexpr bool op_is_load(Opcode op) {
  return op == Opcode::LD || op == Opcode::FLD;
}
[[nodiscard]] constexpr bool op_is_store(Opcode op) {
  return op == Opcode::ST || op == Opcode::FST;
}
[[nodiscard]] constexpr bool op_is_memory(Opcode op) {
  return op >= Opcode::LD && op <= Opcode::FST;
}
// Everything before the stores (arithmetic, moves, conversions, loads)
// writes a destination register.
[[nodiscard]] constexpr bool op_has_dest(Opcode op) { return op < Opcode::ST; }
[[nodiscard]] constexpr bool op_is_fp_compare(Opcode op) {
  return op >= Opcode::FBEQ && op <= Opcode::FBGE;
}

// True for two-source arithmetic ops (excludes moves, loads, control).
[[nodiscard]] bool op_is_binary_arith(Opcode op);

// Commutativity/associativity used by tree height reduction and combining.
[[nodiscard]] bool op_is_commutative(Opcode op);

// Destination register class for ops with a dest.
[[nodiscard]] bool op_dest_is_fp(Opcode op);

// Inverse / mirrored comparison for branch rewriting (e.g. BLT <-> BGE,
// and BLT(a,b) == BGT(b,a)).
[[nodiscard]] Opcode op_invert_branch(Opcode op);
[[nodiscard]] Opcode op_swap_branch(Opcode op);

}  // namespace ilp
