#include "ir/function.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilp {

BlockId Function::add_block(std::string name) {
  const BlockId id = static_cast<BlockId>(block_index_.size());
  block_index_.push_back(blocks_.size());
  Block b;
  b.id = id;
  b.name = std::move(name);
  blocks_.push_back(std::move(b));
  return id;
}

Block& Function::block(BlockId id) {
  ILP_ASSERT(id < block_index_.size(), "bad block id");
  return blocks_[block_index_[id]];
}

const Block& Function::block(BlockId id) const {
  ILP_ASSERT(id < block_index_.size(), "bad block id");
  return blocks_[block_index_[id]];
}

std::size_t Function::layout_index(BlockId id) const {
  ILP_ASSERT(id < block_index_.size(), "bad block id");
  return block_index_[id];
}

BlockId Function::layout_next(BlockId id) const {
  const std::size_t pos = layout_index(id);
  if (pos + 1 >= blocks_.size()) return kNoBlock;
  return blocks_[pos + 1].id;
}

BlockId Function::insert_block_after(BlockId after, std::string name) {
  const std::size_t pos = layout_index(after);
  const BlockId id = static_cast<BlockId>(block_index_.size());
  Block b;
  b.id = id;
  b.name = std::move(name);
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(pos) + 1, std::move(b));
  block_index_.push_back(0);  // placeholder; rebuild below
  for (std::size_t i = 0; i < blocks_.size(); ++i) block_index_[blocks_[i].id] = i;
  return id;
}

Reg Function::new_reg(RegClass cls) {
  if (cls == RegClass::Int) return Reg{cls, next_int_reg_++};
  return Reg{cls, next_fp_reg_++};
}

void Function::reserve_regs(RegClass cls, std::uint32_t n) {
  if (cls == RegClass::Int)
    next_int_reg_ = std::max(next_int_reg_, n);
  else
    next_fp_reg_ = std::max(next_fp_reg_, n);
}

std::int32_t Function::add_array(ArrayInfo info) {
  const auto id = static_cast<std::int32_t>(arrays_.size());
  arrays_.push_back(std::move(info));
  return id;
}

const ArrayInfo* Function::array(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= arrays_.size()) return nullptr;
  return &arrays_[static_cast<std::size_t>(id)];
}

std::int32_t Function::find_array(std::string_view name) const {
  for (std::size_t i = 0; i < arrays_.size(); ++i)
    if (arrays_[i].name == name) return static_cast<std::int32_t>(i);
  return -1;
}

void Function::renumber() {
  next_uid_ = 0;
  for (auto& b : blocks_)
    for (auto& in : b.insts) in.uid = next_uid_++;
}

std::size_t Function::num_insts() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.insts.size();
  return n;
}

}  // namespace ilp
